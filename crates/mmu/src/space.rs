//! The paged virtual address space: permissions, mapping and remapping.

use crate::{Access, FaultKind, GuestMemory, PageFault, Width, PAGE_SHIFT, PAGE_SIZE};
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-page permission bits.
///
/// ```
/// use adbt_mmu::Perms;
///
/// let rw = Perms::READ | Perms::WRITE;
/// assert!(rw.allows_write());
/// assert!(!rw.allows_exec());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Perms(u8);

impl Perms {
    /// No access at all.
    pub const NONE: Perms = Perms(0);
    /// Loads allowed.
    pub const READ: Perms = Perms(1);
    /// Stores allowed.
    pub const WRITE: Perms = Perms(2);
    /// Instruction fetches allowed.
    pub const EXEC: Perms = Perms(4);
    /// Read + write + execute; the default for mapped pages.
    pub const RWX: Perms = Perms(7);

    /// Whether loads are allowed.
    pub const fn allows_read(self) -> bool {
        self.0 & 1 != 0
    }

    /// Whether stores are allowed.
    pub const fn allows_write(self) -> bool {
        self.0 & 2 != 0
    }

    /// Whether instruction fetches are allowed.
    pub const fn allows_exec(self) -> bool {
        self.0 & 4 != 0
    }

    /// Whether an access of the given kind is allowed.
    pub const fn allows(self, access: Access) -> bool {
        match access {
            Access::Load => self.allows_read(),
            Access::Store => self.allows_write(),
            Access::Fetch => self.allows_exec(),
        }
    }

    const fn bits(self) -> u8 {
        self.0
    }

    const fn from_bits(bits: u8) -> Perms {
        Perms(bits & 7)
    }
}

impl std::ops::BitOr for Perms {
    type Output = Perms;
    fn bitor(self, rhs: Perms) -> Perms {
        Perms(self.0 | rhs.0)
    }
}

/// Configuration for an [`AddressSpace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpaceConfig {
    /// Physical memory size in bytes (multiple of [`PAGE_SIZE`]).
    pub phys_size: u32,
    /// Extra *unmapped* virtual pages appended after the identity-mapped
    /// physical range. PST-REMAP uses this area as remap targets.
    pub extra_virt_pages: u32,
}

// Page-entry bit layout (single AtomicU64 per virtual page):
//   [31:0]  frame number
//   [34:32] permission bits
//   [40]    mapped flag
//   [41]    write-track flag (SMC detection: stores fault even when
//           permissions allow them, so the translation cache can
//           invalidate blocks backed by this page)
const ENTRY_PERM_SHIFT: u64 = 32;
const ENTRY_MAPPED: u64 = 1 << 40;
const ENTRY_TRACKED: u64 = 1 << 41;

/// A paged virtual address space over a [`GuestMemory`].
///
/// Pages are [`PAGE_SIZE`] bytes. Each virtual page holds an atomic entry
/// with a frame number, permission bits and a mapped flag, so permission
/// changes made by one vCPU thread (e.g. PST's `mprotect` analogue) are
/// immediately visible to every other thread's next access — the
/// deterministic equivalent of a TLB shootdown.
///
/// Construction identity-maps all physical frames read-write-execute and
/// leaves `extra_virt_pages` unmapped on top, which PST-REMAP uses as the
/// destination window for [`AddressSpace::move_page`].
pub struct AddressSpace {
    mem: GuestMemory,
    entries: Box<[AtomicU64]>,
}

impl AddressSpace {
    /// Creates a space with `phys_size` bytes of identity-mapped physical
    /// memory and `extra_virt_pages` unmapped pages above it.
    ///
    /// # Errors
    ///
    /// Returns an error string if `phys_size` is zero, not page-aligned,
    /// or the total virtual size overflows the 32-bit guest address space.
    pub fn new(phys_size: u32, extra_virt_pages: u32) -> Result<AddressSpace, String> {
        AddressSpace::with_config(SpaceConfig {
            phys_size,
            extra_virt_pages,
        })
    }

    /// Creates a space from a [`SpaceConfig`]; see [`AddressSpace::new`].
    ///
    /// # Errors
    ///
    /// Returns an error string for an invalid configuration (zero or
    /// unaligned physical size, or a virtual span exceeding 2³² bytes).
    pub fn with_config(config: SpaceConfig) -> Result<AddressSpace, String> {
        if config.phys_size == 0 || !config.phys_size.is_multiple_of(PAGE_SIZE) {
            return Err(format!(
                "phys_size {:#x} must be a positive multiple of the {PAGE_SIZE}-byte page size",
                config.phys_size
            ));
        }
        let phys_pages = (config.phys_size >> PAGE_SHIFT) as u64;
        let total_pages = phys_pages + config.extra_virt_pages as u64;
        if total_pages > (1u64 << (32 - PAGE_SHIFT)) {
            return Err("virtual address space exceeds 32 bits".to_string());
        }
        let mut entries = Vec::with_capacity(total_pages as usize);
        for frame in 0..phys_pages {
            entries.push(AtomicU64::new(
                frame | ((Perms::RWX.bits() as u64) << ENTRY_PERM_SHIFT) | ENTRY_MAPPED,
            ));
        }
        entries.resize_with(total_pages as usize, || AtomicU64::new(0));
        Ok(AddressSpace {
            mem: GuestMemory::new(config.phys_size),
            entries: entries.into_boxed_slice(),
        })
    }

    /// The underlying physical memory (for image loading and host-side
    /// verification; guest accesses should translate).
    pub fn mem(&self) -> &GuestMemory {
        &self.mem
    }

    /// Number of virtual pages (mapped + unmapped).
    pub fn virt_pages(&self) -> u32 {
        self.entries.len() as u32
    }

    /// The first virtual page *above* the identity-mapped physical range —
    /// the start of the remap window when `extra_virt_pages > 0`.
    pub fn high_window_base(&self) -> u32 {
        self.mem.size() >> PAGE_SHIFT
    }

    #[inline]
    fn entry(&self, page: u32) -> Option<&AtomicU64> {
        self.entries.get(page as usize)
    }

    /// Translates a virtual address for the given access, returning the
    /// physical address.
    ///
    /// # Errors
    ///
    /// Returns a [`PageFault`] when the access is unaligned, the address
    /// is outside the virtual space, the page is unmapped, or permissions
    /// forbid the access.
    #[inline]
    pub fn translate(&self, vaddr: u32, access: Access, width: Width) -> Result<u32, PageFault> {
        if !vaddr.is_multiple_of(width.bytes()) {
            return Err(PageFault {
                vaddr,
                access,
                kind: FaultKind::Unaligned,
            });
        }
        let page = vaddr >> PAGE_SHIFT;
        let entry = self.entry(page).ok_or(PageFault {
            vaddr,
            access,
            kind: FaultKind::OutOfRange,
        })?;
        let bits = entry.load(Ordering::SeqCst);
        if bits & ENTRY_MAPPED == 0 {
            return Err(PageFault {
                vaddr,
                access,
                kind: FaultKind::Unmapped,
            });
        }
        let perms = Perms::from_bits((bits >> ENTRY_PERM_SHIFT) as u8);
        // Write-tracked pages fault on *every* store regardless of
        // permissions — that is how the translation cache hears about
        // guest writes into translated code. Same single atomic load as
        // the permission check, so untracked pages pay nothing.
        if !perms.allows(access) || (matches!(access, Access::Store) && bits & ENTRY_TRACKED != 0) {
            return Err(PageFault {
                vaddr,
                access,
                kind: FaultKind::Protected,
            });
        }
        let frame = (bits & 0xffff_ffff) as u32;
        Ok((frame << PAGE_SHIFT) | (vaddr & (PAGE_SIZE - 1)))
    }

    /// Translates a virtual address checking only mapping and alignment,
    /// *not* permissions — the privileged path page-fault handlers use to
    /// complete a store on a write-protected page (PST's false-sharing
    /// case) or for an SC store while the page is read-only.
    ///
    /// # Errors
    ///
    /// Returns a [`PageFault`] for unaligned, out-of-range or unmapped
    /// addresses (access kind reported as [`Access::Store`]).
    #[inline]
    pub fn translate_bypass(&self, vaddr: u32, width: Width) -> Result<u32, PageFault> {
        if !vaddr.is_multiple_of(width.bytes()) {
            return Err(PageFault {
                vaddr,
                access: Access::Store,
                kind: FaultKind::Unaligned,
            });
        }
        let page = vaddr >> PAGE_SHIFT;
        let entry = self.entry(page).ok_or(PageFault {
            vaddr,
            access: Access::Store,
            kind: FaultKind::OutOfRange,
        })?;
        let bits = entry.load(Ordering::SeqCst);
        if bits & ENTRY_MAPPED == 0 {
            return Err(PageFault {
                vaddr,
                access: Access::Store,
                kind: FaultKind::Unmapped,
            });
        }
        let frame = (bits & 0xffff_ffff) as u32;
        Ok((frame << PAGE_SHIFT) | (vaddr & (PAGE_SIZE - 1)))
    }

    /// Loads through translation.
    ///
    /// # Errors
    ///
    /// Propagates the [`PageFault`] from [`AddressSpace::translate`].
    #[inline]
    pub fn load(&self, vaddr: u32, width: Width) -> Result<u32, PageFault> {
        let paddr = self.translate(vaddr, Access::Load, width)?;
        Ok(self.mem.load(paddr, width))
    }

    /// Stores through translation.
    ///
    /// # Errors
    ///
    /// Propagates the [`PageFault`] from [`AddressSpace::translate`].
    #[inline]
    pub fn store(&self, vaddr: u32, width: Width, value: u32) -> Result<(), PageFault> {
        let paddr = self.translate(vaddr, Access::Store, width)?;
        self.mem.store(paddr, width, value);
        Ok(())
    }

    /// Compare-and-swap through translation (word-sized).
    ///
    /// The outer `Result` is the translation outcome; the inner one is the
    /// CAS outcome as in [`GuestMemory::cas_word`].
    ///
    /// # Errors
    ///
    /// Propagates the [`PageFault`] from [`AddressSpace::translate`].
    #[inline]
    pub fn cas_word(
        &self,
        vaddr: u32,
        expected: u32,
        new: u32,
    ) -> Result<Result<u32, u32>, PageFault> {
        let paddr = self.translate(vaddr, Access::Store, Width::Word)?;
        Ok(self.mem.cas_word(paddr, expected, new))
    }

    /// Returns the current permissions of a mapped page, or `None` if the
    /// page is unmapped or out of range.
    pub fn perms(&self, page: u32) -> Option<Perms> {
        let bits = self.entry(page)?.load(Ordering::SeqCst);
        if bits & ENTRY_MAPPED == 0 {
            return None;
        }
        Some(Perms::from_bits((bits >> ENTRY_PERM_SHIFT) as u8))
    }

    /// Atomically replaces the permissions of a mapped page — the
    /// `mprotect` analogue. Returns the previous permissions, or `None`
    /// (no change) if the page was unmapped or out of range.
    pub fn protect(&self, page: u32, perms: Perms) -> Option<Perms> {
        let entry = self.entry(page)?;
        let mut bits = entry.load(Ordering::SeqCst);
        loop {
            if bits & ENTRY_MAPPED == 0 {
                return None;
            }
            let new_bits =
                (bits & !(7u64 << ENTRY_PERM_SHIFT)) | ((perms.bits() as u64) << ENTRY_PERM_SHIFT);
            match entry.compare_exchange_weak(bits, new_bits, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(old) => return Some(Perms::from_bits((old >> ENTRY_PERM_SHIFT) as u8)),
                Err(actual) => bits = actual,
            }
        }
    }

    /// Marks a mapped page write-tracked: every subsequent store to it
    /// faults [`FaultKind::Protected`] even if permissions allow
    /// writing, until [`AddressSpace::write_untrack`] clears the mark.
    /// The translation cache tracks every page backing translated code
    /// this way so guest self-modification raises an invalidation event
    /// instead of silently racing stale translations. Returns `false`
    /// if the page is unmapped or out of range.
    pub fn write_track(&self, page: u32) -> bool {
        self.set_track(page, true)
    }

    /// Clears a page's write-track mark; see
    /// [`AddressSpace::write_track`]. Returns `false` if the page is
    /// unmapped or out of range.
    pub fn write_untrack(&self, page: u32) -> bool {
        self.set_track(page, false)
    }

    /// Whether a page is currently write-tracked.
    pub fn write_tracked(&self, page: u32) -> bool {
        let want = ENTRY_MAPPED | ENTRY_TRACKED;
        self.entry(page)
            .is_some_and(|e| e.load(Ordering::SeqCst) & want == want)
    }

    fn set_track(&self, page: u32, tracked: bool) -> bool {
        let Some(entry) = self.entry(page) else {
            return false;
        };
        let mut bits = entry.load(Ordering::SeqCst);
        loop {
            if bits & ENTRY_MAPPED == 0 {
                return false;
            }
            let new_bits = if tracked {
                bits | ENTRY_TRACKED
            } else {
                bits & !ENTRY_TRACKED
            };
            match entry.compare_exchange_weak(bits, new_bits, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return true,
                Err(actual) => bits = actual,
            }
        }
    }

    /// Maps `page` to physical `frame` with the given permissions,
    /// replacing any existing mapping. Returns `false` if `page` or
    /// `frame` is out of range.
    pub fn map(&self, page: u32, frame: u32, perms: Perms) -> bool {
        if (frame as u64) >= (self.mem.size() as u64) >> PAGE_SHIFT {
            return false;
        }
        match self.entry(page) {
            Some(entry) => {
                entry.store(
                    frame as u64 | ((perms.bits() as u64) << ENTRY_PERM_SHIFT) | ENTRY_MAPPED,
                    Ordering::SeqCst,
                );
                true
            }
            None => false,
        }
    }

    /// Unmaps `page`, returning the frame it pointed to, or `None` if it
    /// was already unmapped or out of range.
    pub fn unmap(&self, page: u32) -> Option<u32> {
        let entry = self.entry(page)?;
        let bits = entry.swap(0, Ordering::SeqCst);
        if bits & ENTRY_MAPPED == 0 {
            None
        } else {
            Some((bits & 0xffff_ffff) as u32)
        }
    }

    /// Moves the mapping of `from` to `to` with new permissions — the
    /// `mremap` analogue used by PST-REMAP during SC emulation.
    ///
    /// The source is unmapped *first*, so there is a window in which
    /// neither address is mapped (accesses fault with
    /// [`FaultKind::Unmapped`]) but never a window in which both are
    /// writable — that ordering is what gives PST-REMAP its exclusion.
    ///
    /// Returns the moved frame number.
    ///
    /// # Errors
    ///
    /// Returns an error string when `from` is unmapped/out-of-range or
    /// `to` is out of range (in which case the original mapping is
    /// restored before returning).
    pub fn move_page(&self, from: u32, to: u32, perms: Perms) -> Result<u32, String> {
        let frame = self
            .unmap(from)
            .ok_or_else(|| format!("move_page: source page {from:#x} not mapped"))?;
        if self.map(to, frame, perms) {
            Ok(frame)
        } else {
            // Restore the source mapping so a failed move is harmless.
            self.map(from, frame, Perms::RWX);
            Err(format!("move_page: destination page {to:#x} out of range"))
        }
    }
}

impl std::fmt::Debug for AddressSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AddressSpace")
            .field("phys_size", &self.mem.size())
            .field("virt_pages", &self.virt_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        AddressSpace::new(4 * PAGE_SIZE, 2).unwrap()
    }

    #[test]
    fn identity_mapping_round_trips() {
        let s = space();
        s.store(0x1234, Width::Word, 99).unwrap();
        assert_eq!(s.load(0x1234, Width::Word).unwrap(), 99);
        assert_eq!(s.mem().load(0x1234, Width::Word), 99);
    }

    #[test]
    fn unaligned_accesses_fault() {
        let s = space();
        let fault = s.load(0x1001, Width::Word).unwrap_err();
        assert_eq!(fault.kind, FaultKind::Unaligned);
        assert!(s.load(0x1001, Width::Byte).is_ok());
        let fault = s.store(0x1002, Width::Word, 0).unwrap_err();
        assert_eq!(fault.kind, FaultKind::Unaligned);
        assert!(s.store(0x1002, Width::Half, 0).is_ok());
    }

    #[test]
    fn out_of_range_faults() {
        let s = space();
        // 4 phys pages + 2 extra = 6 pages of virtual space.
        let fault = s.load(6 * PAGE_SIZE, Width::Word).unwrap_err();
        assert_eq!(fault.kind, FaultKind::OutOfRange);
    }

    #[test]
    fn extra_pages_start_unmapped() {
        let s = space();
        let fault = s.load(4 * PAGE_SIZE, Width::Word).unwrap_err();
        assert_eq!(fault.kind, FaultKind::Unmapped);
        assert_eq!(s.high_window_base(), 4);
    }

    #[test]
    fn protect_blocks_only_the_denied_access() {
        let s = space();
        assert_eq!(s.protect(1, Perms::READ), Some(Perms::RWX));
        let addr = PAGE_SIZE + 8;
        assert!(s.load(addr, Width::Word).is_ok());
        let fault = s.store(addr, Width::Word, 1).unwrap_err();
        assert_eq!(fault.kind, FaultKind::Protected);
        assert_eq!(fault.access, Access::Store);
        // Restore and the store succeeds.
        s.protect(1, Perms::RWX);
        assert!(s.store(addr, Width::Word, 1).is_ok());
    }

    #[test]
    fn fetch_requires_exec() {
        let s = space();
        s.protect(0, Perms::READ | Perms::WRITE);
        let fault = s.translate(0x10, Access::Fetch, Width::Word).unwrap_err();
        assert_eq!(fault.kind, FaultKind::Protected);
    }

    #[test]
    fn move_page_redirects_and_unmaps_source() {
        let s = space();
        s.store(2 * PAGE_SIZE + 4, Width::Word, 77).unwrap();
        let frame = s
            .move_page(2, s.high_window_base(), Perms::READ | Perms::WRITE)
            .unwrap();
        assert_eq!(frame, 2);
        // Original address now faults MAPERR.
        let fault = s.load(2 * PAGE_SIZE + 4, Width::Word).unwrap_err();
        assert_eq!(fault.kind, FaultKind::Unmapped);
        // Alias sees the same bytes.
        let alias = s.high_window_base() * PAGE_SIZE + 4;
        assert_eq!(s.load(alias, Width::Word).unwrap(), 77);
        s.store(alias, Width::Word, 78).unwrap();
        // Move back.
        s.move_page(s.high_window_base(), 2, Perms::RWX).unwrap();
        assert_eq!(s.load(2 * PAGE_SIZE + 4, Width::Word).unwrap(), 78);
    }

    #[test]
    fn move_page_from_unmapped_errors() {
        let s = space();
        assert!(s.move_page(5, 4, Perms::RWX).is_err());
    }

    #[test]
    fn move_page_to_out_of_range_restores_source() {
        let s = space();
        assert!(s.move_page(1, 1000, Perms::RWX).is_err());
        // Source restored.
        assert!(s.load(PAGE_SIZE, Width::Word).is_ok());
    }

    #[test]
    fn cas_through_translation() {
        let s = space();
        s.store(0x40, Width::Word, 5).unwrap();
        assert_eq!(s.cas_word(0x40, 5, 6).unwrap(), Ok(5));
        assert_eq!(s.cas_word(0x40, 5, 7).unwrap(), Err(6));
        s.protect(0, Perms::READ);
        assert!(s.cas_word(0x40, 6, 8).is_err());
    }

    #[test]
    fn protect_is_immediately_visible_across_threads() {
        let s = space();
        let addr = 3 * PAGE_SIZE;
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                let mut faults = 0u32;
                for i in 0..50_000u32 {
                    if s.store(addr, Width::Word, i).is_err() {
                        faults += 1;
                    }
                }
                faults
            });
            for _ in 0..100 {
                s.protect(3, Perms::READ);
                std::thread::yield_now();
                s.protect(3, Perms::RWX);
            }
            // The writer must have observed at least some protected
            // windows or none — either way it must terminate and the
            // final state must be writable.
            let _ = writer.join().unwrap();
        });
        assert!(s.store(addr, Width::Word, 1).is_ok());
    }

    #[test]
    fn write_tracked_pages_fault_stores_but_not_loads_or_fetches() {
        let s = space();
        let addr = PAGE_SIZE + 0x20;
        s.store(addr, Width::Word, 11).unwrap();
        assert!(!s.write_tracked(1));
        assert!(s.write_track(1));
        assert!(s.write_tracked(1));
        // Permissions still read RWX — tracking is orthogonal.
        assert_eq!(s.perms(1), Some(Perms::RWX));
        assert!(s.load(addr, Width::Word).is_ok());
        assert!(s.translate(addr, Access::Fetch, Width::Word).is_ok());
        let fault = s.store(addr, Width::Word, 12).unwrap_err();
        assert_eq!(fault.kind, FaultKind::Protected);
        assert_eq!(fault.access, Access::Store);
        // The privileged bypass path ignores tracking (the fault
        // handler completes the store after invalidating).
        assert!(s.translate_bypass(addr, Width::Word).is_ok());
        // Untracking restores plain stores.
        assert!(s.write_untrack(1));
        assert!(!s.write_tracked(1));
        assert!(s.store(addr, Width::Word, 13).is_ok());
        assert_eq!(s.load(addr, Width::Word).unwrap(), 13);
    }

    #[test]
    fn tracking_survives_protect_and_rejects_unmapped_pages() {
        let s = space();
        assert!(s.write_track(2));
        // A permission change must not clobber the track bit (both
        // mutate the same entry with CAS loops).
        s.protect(2, Perms::READ | Perms::WRITE);
        assert!(s.write_tracked(2));
        let fault = s.store(2 * PAGE_SIZE, Width::Word, 1).unwrap_err();
        assert_eq!(fault.kind, FaultKind::Protected);
        // Unmapped and out-of-range pages cannot be tracked.
        assert!(!s.write_track(4));
        assert!(!s.write_tracked(4));
        assert!(!s.write_track(1000));
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(AddressSpace::new(0, 0).is_err());
        assert!(AddressSpace::new(100, 0).is_err());
        assert!(AddressSpace::with_config(SpaceConfig {
            phys_size: PAGE_SIZE,
            extra_virt_pages: u32::MAX,
        })
        .is_err());
    }
}
