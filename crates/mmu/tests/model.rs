//! Randomized model tests: the address space against a simple reference
//! model (a byte map plus per-page permission/mapping state). Op
//! sequences come from a seeded xorshift generator (the workspace
//! builds air-gapped, without a property-testing crate).

use adbt_mmu::{Access, AddressSpace, FaultKind, Perms, Width, PAGE_SHIFT, PAGE_SIZE};

/// Deterministic xorshift64* generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u32) -> u32 {
        (self.next() % n as u64) as u32
    }
}

const PHYS_PAGES: u32 = 4;
const EXTRA_PAGES: u32 = 2;

/// The reference model mirrors the identity-mapped space: each virtual
/// page maps to a frame (or nothing) and carries permissions; bytes live
/// in per-frame arrays.
struct Model {
    frames: Vec<[u8; PAGE_SIZE as usize]>,
    mapping: Vec<Option<(u32, Perms)>>,
}

impl Model {
    fn new() -> Model {
        Model {
            frames: vec![[0; PAGE_SIZE as usize]; PHYS_PAGES as usize],
            mapping: (0..PHYS_PAGES + EXTRA_PAGES)
                .map(|p| (p < PHYS_PAGES).then_some((p, Perms::RWX)))
                .collect(),
        }
    }

    fn check(&self, vaddr: u32, access: Access, width: Width) -> Result<(u32, u32), FaultKind> {
        if !vaddr.is_multiple_of(width.bytes()) {
            return Err(FaultKind::Unaligned);
        }
        let page = (vaddr >> PAGE_SHIFT) as usize;
        if page >= self.mapping.len() {
            return Err(FaultKind::OutOfRange);
        }
        let (frame, perms) = self.mapping[page].ok_or(FaultKind::Unmapped)?;
        if !perms.allows(access) {
            return Err(FaultKind::Protected);
        }
        Ok((frame, vaddr & (PAGE_SIZE - 1)))
    }

    fn load(&self, vaddr: u32, width: Width) -> Result<u32, FaultKind> {
        let (frame, off) = self.check(vaddr, Access::Load, width)?;
        let bytes = &self.frames[frame as usize];
        let mut value = 0u32;
        for i in 0..width.bytes() {
            value |= (bytes[(off + i) as usize] as u32) << (8 * i);
        }
        Ok(value)
    }

    fn store(&mut self, vaddr: u32, width: Width, value: u32) -> Result<(), FaultKind> {
        let (frame, off) = self.check(vaddr, Access::Store, width)?;
        let bytes = &mut self.frames[frame as usize];
        for i in 0..width.bytes() {
            bytes[(off + i) as usize] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }
}

#[derive(Clone, Debug)]
enum OpCase {
    Load {
        vaddr: u32,
        width: Width,
    },
    Store {
        vaddr: u32,
        width: Width,
        value: u32,
    },
    Protect {
        page: u32,
        perms: Perms,
    },
    Unmap {
        page: u32,
    },
    Move {
        from: u32,
        to: u32,
    },
}

fn arb_width(rng: &mut Rng) -> Width {
    match rng.below(3) {
        0 => Width::Byte,
        1 => Width::Half,
        _ => Width::Word,
    }
}

fn arb_perms(rng: &mut Rng) -> Perms {
    match rng.below(5) {
        0 => Perms::RWX,
        1 => Perms::READ | Perms::EXEC,
        2 => Perms::READ | Perms::WRITE,
        3 => Perms::READ,
        _ => Perms::NONE,
    }
}

fn arb_op(rng: &mut Rng) -> OpCase {
    let total = (PHYS_PAGES + EXTRA_PAGES) * PAGE_SIZE;
    let pages = PHYS_PAGES + EXTRA_PAGES;
    match rng.below(11) {
        0..=3 => OpCase::Load {
            vaddr: rng.below(total),
            width: arb_width(rng),
        },
        4..=7 => OpCase::Store {
            vaddr: rng.below(total),
            width: arb_width(rng),
            value: rng.next() as u32,
        },
        8 => OpCase::Protect {
            page: rng.below(pages),
            perms: arb_perms(rng),
        },
        9 => OpCase::Unmap {
            page: rng.below(pages),
        },
        _ => OpCase::Move {
            from: rng.below(pages),
            to: rng.below(pages),
        },
    }
}

/// Any sequence of loads, stores, protections, unmaps and remaps
/// leaves the space agreeing with the model on every outcome.
#[test]
fn space_agrees_with_model() {
    let mut rng = Rng::new(0x9a6e_ab1e);
    for _case in 0..256 {
        let space = AddressSpace::new(PHYS_PAGES * PAGE_SIZE, EXTRA_PAGES).unwrap();
        let mut model = Model::new();
        let ops: Vec<OpCase> = (0..1 + rng.below(119)).map(|_| arb_op(&mut rng)).collect();
        for op in ops {
            match op {
                OpCase::Load { vaddr, width } => {
                    let got = space.load(vaddr, width);
                    let want = model.load(vaddr, width);
                    match (got, want) {
                        (Ok(g), Ok(w)) => assert_eq!(g, w, "load {:#x}", vaddr),
                        (Err(g), Err(w)) => assert_eq!(g.kind, w, "load fault {:#x}", vaddr),
                        (g, w) => panic!("load {vaddr:#x}: {g:?} vs {w:?}"),
                    }
                }
                OpCase::Store {
                    vaddr,
                    width,
                    value,
                } => {
                    let got = space.store(vaddr, width, value);
                    let want = model.store(vaddr, width, value);
                    match (got, want) {
                        (Ok(()), Ok(())) => {}
                        (Err(g), Err(w)) => assert_eq!(g.kind, w, "store fault {:#x}", vaddr),
                        (g, w) => panic!("store {vaddr:#x}: {g:?} vs {w:?}"),
                    }
                }
                OpCase::Protect { page, perms } => {
                    let got = space.protect(page, perms);
                    let entry = model.mapping.get_mut(page as usize);
                    match entry {
                        Some(Some((_, model_perms))) => {
                            assert_eq!(got, Some(*model_perms));
                            *model_perms = perms;
                        }
                        _ => assert_eq!(got, None),
                    }
                }
                OpCase::Unmap { page } => {
                    let got = space.unmap(page);
                    let entry = model.mapping.get_mut(page as usize);
                    match entry {
                        Some(slot @ Some(_)) => {
                            assert_eq!(got, slot.map(|(f, _)| f));
                            *slot = None;
                        }
                        _ => assert_eq!(got, None),
                    }
                }
                OpCase::Move { from, to } => {
                    let got = space.move_page(from, to, Perms::RWX);
                    let from_entry = model.mapping.get(from as usize).copied().flatten();
                    let to_in_range = (to as usize) < model.mapping.len();
                    match (from_entry, to_in_range, from == to) {
                        (Some((frame, _)), true, false) => {
                            assert_eq!(got, Ok(frame));
                            model.mapping[from as usize] = None;
                            model.mapping[to as usize] = Some((frame, Perms::RWX));
                        }
                        (Some((frame, _)), true, true) => {
                            // Move onto itself: unmapped then remapped.
                            assert_eq!(got, Ok(frame));
                            model.mapping[to as usize] = Some((frame, Perms::RWX));
                        }
                        (Some((frame, perms)), false, _) => {
                            // Destination out of range: restored with RWX
                            // (the implementation's documented recovery).
                            assert!(got.is_err());
                            let _ = perms;
                            model.mapping[from as usize] = Some((frame, Perms::RWX));
                        }
                        (None, _, _) => assert!(got.is_err()),
                    }
                }
            }
        }
    }
}
