//! Property tests: the address space against a simple reference model
//! (a byte map plus per-page permission/mapping state).

use adbt_mmu::{Access, AddressSpace, FaultKind, Perms, Width, PAGE_SHIFT, PAGE_SIZE};
use proptest::prelude::*;
use std::collections::HashMap;

const PHYS_PAGES: u32 = 4;
const EXTRA_PAGES: u32 = 2;

/// The reference model mirrors the identity-mapped space: each virtual
/// page maps to a frame (or nothing) and carries permissions; bytes live
/// in per-frame arrays.
struct Model {
    frames: Vec<[u8; PAGE_SIZE as usize]>,
    mapping: Vec<Option<(u32, Perms)>>,
}

impl Model {
    fn new() -> Model {
        Model {
            frames: vec![[0; PAGE_SIZE as usize]; PHYS_PAGES as usize],
            mapping: (0..PHYS_PAGES + EXTRA_PAGES)
                .map(|p| (p < PHYS_PAGES).then_some((p, Perms::RWX)))
                .collect(),
        }
    }

    fn check(&self, vaddr: u32, access: Access, width: Width) -> Result<(u32, u32), FaultKind> {
        if vaddr % width.bytes() != 0 {
            return Err(FaultKind::Unaligned);
        }
        let page = (vaddr >> PAGE_SHIFT) as usize;
        if page >= self.mapping.len() {
            return Err(FaultKind::OutOfRange);
        }
        let (frame, perms) = self.mapping[page].ok_or(FaultKind::Unmapped)?;
        if !perms.allows(access) {
            return Err(FaultKind::Protected);
        }
        Ok((frame, vaddr & (PAGE_SIZE - 1)))
    }

    fn load(&self, vaddr: u32, width: Width) -> Result<u32, FaultKind> {
        let (frame, off) = self.check(vaddr, Access::Load, width)?;
        let bytes = &self.frames[frame as usize];
        let mut value = 0u32;
        for i in 0..width.bytes() {
            value |= (bytes[(off + i) as usize] as u32) << (8 * i);
        }
        Ok(value)
    }

    fn store(&mut self, vaddr: u32, width: Width, value: u32) -> Result<(), FaultKind> {
        let (frame, off) = self.check(vaddr, Access::Store, width)?;
        let bytes = &mut self.frames[frame as usize];
        for i in 0..width.bytes() {
            bytes[(off + i) as usize] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }
}

#[derive(Clone, Debug)]
enum OpCase {
    Load {
        vaddr: u32,
        width: Width,
    },
    Store {
        vaddr: u32,
        width: Width,
        value: u32,
    },
    Protect {
        page: u32,
        perms: Perms,
    },
    Unmap {
        page: u32,
    },
    Move {
        from: u32,
        to: u32,
    },
}

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::Byte), Just(Width::Half), Just(Width::Word)]
}

fn arb_perms() -> impl Strategy<Value = Perms> {
    prop_oneof![
        Just(Perms::RWX),
        Just(Perms::READ | Perms::EXEC),
        Just(Perms::READ | Perms::WRITE),
        Just(Perms::READ),
        Just(Perms::NONE),
    ]
}

fn arb_op() -> impl Strategy<Value = OpCase> {
    let total = (PHYS_PAGES + EXTRA_PAGES) * PAGE_SIZE;
    prop_oneof![
        4 => (0..total, arb_width()).prop_map(|(vaddr, width)| OpCase::Load { vaddr, width }),
        4 => (0..total, arb_width(), any::<u32>())
            .prop_map(|(vaddr, width, value)| OpCase::Store { vaddr, width, value }),
        1 => (0..PHYS_PAGES + EXTRA_PAGES, arb_perms())
            .prop_map(|(page, perms)| OpCase::Protect { page, perms }),
        1 => (0..PHYS_PAGES + EXTRA_PAGES).prop_map(|page| OpCase::Unmap { page }),
        1 => (0..PHYS_PAGES + EXTRA_PAGES, 0..PHYS_PAGES + EXTRA_PAGES)
            .prop_map(|(from, to)| OpCase::Move { from, to }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any sequence of loads, stores, protections, unmaps and remaps
    /// leaves the space agreeing with the model on every outcome.
    #[test]
    fn space_agrees_with_model(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let space = AddressSpace::new(PHYS_PAGES * PAGE_SIZE, EXTRA_PAGES).unwrap();
        let mut model = Model::new();
        for op in ops {
            match op {
                OpCase::Load { vaddr, width } => {
                    let got = space.load(vaddr, width);
                    let want = model.load(vaddr, width);
                    match (got, want) {
                        (Ok(g), Ok(w)) => prop_assert_eq!(g, w, "load {:#x}", vaddr),
                        (Err(g), Err(w)) => prop_assert_eq!(g.kind, w, "load fault {:#x}", vaddr),
                        (g, w) => prop_assert!(false, "load {:#x}: {:?} vs {:?}", vaddr, g, w),
                    }
                }
                OpCase::Store { vaddr, width, value } => {
                    let got = space.store(vaddr, width, value);
                    let want = model.store(vaddr, width, value);
                    match (got, want) {
                        (Ok(()), Ok(())) => {}
                        (Err(g), Err(w)) => prop_assert_eq!(g.kind, w, "store fault {:#x}", vaddr),
                        (g, w) => prop_assert!(false, "store {:#x}: {:?} vs {:?}", vaddr, g, w),
                    }
                }
                OpCase::Protect { page, perms } => {
                    let got = space.protect(page, perms);
                    let entry = model.mapping.get_mut(page as usize);
                    match entry {
                        Some(Some((_, model_perms))) => {
                            prop_assert_eq!(got, Some(*model_perms));
                            *model_perms = perms;
                        }
                        _ => prop_assert_eq!(got, None),
                    }
                }
                OpCase::Unmap { page } => {
                    let got = space.unmap(page);
                    let entry = model.mapping.get_mut(page as usize);
                    match entry {
                        Some(slot @ Some(_)) => {
                            prop_assert_eq!(got, slot.map(|(f, _)| f));
                            *slot = None;
                        }
                        _ => prop_assert_eq!(got, None),
                    }
                }
                OpCase::Move { from, to } => {
                    let got = space.move_page(from, to, Perms::RWX);
                    let from_entry = model
                        .mapping
                        .get(from as usize)
                        .copied()
                        .flatten();
                    let to_in_range = (to as usize) < model.mapping.len();
                    match (from_entry, to_in_range, from == to) {
                        (Some((frame, _)), true, false) => {
                            prop_assert_eq!(got, Ok(frame));
                            model.mapping[from as usize] = None;
                            model.mapping[to as usize] = Some((frame, Perms::RWX));
                        }
                        (Some((frame, _)), true, true) => {
                            // Move onto itself: unmapped then remapped.
                            prop_assert_eq!(got, Ok(frame));
                            model.mapping[to as usize] = Some((frame, Perms::RWX));
                        }
                        (Some((frame, perms)), false, _) => {
                            // Destination out of range: restored with RWX
                            // (the implementation's documented recovery).
                            prop_assert!(got.is_err());
                            let _ = perms;
                            model.mapping[from as usize] = Some((frame, Perms::RWX));
                        }
                        (None, _, _) => prop_assert!(got.is_err()),
                    }
                }
            }
        }
    }
}
