//! `adbt_prof` — renders `.prof` documents written by `adbt_run
//! --profile` as top-N tables per metric with disassembly context, and
//! exports collapsed-stack flamegraph input.
//!
//! ```text
//! adbt_prof out.prof                       # top-10 table per hot metric
//! adbt_prof out.prof --metric sc_fail --top 25
//! adbt_prof out.prof --flamegraph out.folded [--cost excl_wait_ns]
//! adbt_prof out.prof --ci                  # schema gate, no output
//! adbt_prof --check-folded out.folded      # validate a folded file
//! adbt_prof --check-metrics out.jsonl      # validate a metrics stream
//! ```
//!
//! `--ci` and the `--check-*` modes exit non-zero on the first schema
//! violation; ci.sh runs them on the toolchain's own output so the
//! emitters and validators can never drift apart silently.

use adbt_profile::export::{self, ProfDoc, ProfRow};
use adbt_profile::fold::{parse_folded, render_folded};
use adbt_profile::metrics::validate_metrics_jsonl;
use adbt_profile::Metric;

fn usage() -> ! {
    eprintln!(
        "usage: adbt_prof FILE [--top N] [--metric NAME] [--flamegraph OUT [--cost NAME]] [--ci]\n\
         \u{20}      adbt_prof --check-folded FILE | --check-metrics FILE\n\
         metrics: {}",
        Metric::ALL.map(Metric::name).join(" ")
    );
    std::process::exit(2);
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("adbt_prof: cannot read {path}: {e}");
        std::process::exit(1);
    })
}

fn fail(what: &str, why: &str) -> ! {
    eprintln!("adbt_prof: {what}: {why}");
    std::process::exit(1);
}

/// Disassembly context for a row: decode the exported instruction word;
/// undecodable words (data, partially-patched SMC targets) render as
/// raw hex rather than aborting the report.
fn context(row: &ProfRow) -> String {
    match adbt_isa::decode(row.insn) {
        Ok(insn) => adbt_isa::disasm::disassemble_at(&insn, row.pc),
        Err(_) => format!(".word {:#010x}", row.insn),
    }
}

fn top_rows(rows: &[ProfRow], metric: Metric, n: usize) -> Vec<ProfRow> {
    let mut hot: Vec<ProfRow> = rows.iter().filter(|r| r.get(metric) > 0).cloned().collect();
    hot.sort_by(|a, b| {
        b.get(metric)
            .cmp(&a.get(metric))
            .then_with(|| (a.pc, a.tier as u8).cmp(&(b.pc, b.tier as u8)))
    });
    hot.truncate(n);
    hot
}

fn print_table(doc: &ProfDoc, metric: Metric, n: usize) {
    let hot = top_rows(&doc.merged, metric, n);
    if hot.is_empty() {
        return;
    }
    let unit = if metric.is_duration() {
        format!(" ({})", doc.clock)
    } else {
        String::new()
    };
    println!("== top {} by {}{unit} ==", hot.len(), metric.name());
    println!(
        "{:>14}  {:<5} {:>10}  {:<20} disassembly",
        "value", "tier", "pc", "symbol"
    );
    for row in &hot {
        println!(
            "{:>14}  {:<5} {:#010x}  {:<20} {}",
            row.get(metric),
            row.tier.name(),
            row.pc,
            row.symbol,
            context(row)
        );
    }
    let dropped: u64 = doc.vcpus.iter().map(|v| v.overflow.drops).sum();
    let spilled: u64 = doc
        .vcpus
        .iter()
        .map(|v| v.overflow.counts[metric as usize])
        .sum();
    if spilled > 0 {
        println!(
            "{:>14}  (overflow bucket: {} events across {} dropped charges lost PC attribution)",
            spilled, spilled, dropped
        );
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file: Option<String> = None;
    let mut top = 10usize;
    let mut metric: Option<Metric> = None;
    let mut flamegraph: Option<String> = None;
    let mut cost: Option<Metric> = None;
    let mut ci = false;
    let mut check_folded: Option<String> = None;
    let mut check_metrics: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--top" => top = value().parse().unwrap_or_else(|_| usage()),
            "--metric" => metric = Some(Metric::from_name(&value()).unwrap_or_else(|| usage())),
            "--flamegraph" => flamegraph = Some(value()),
            "--cost" => cost = Some(Metric::from_name(&value()).unwrap_or_else(|| usage())),
            "--ci" => ci = true,
            "--check-folded" => check_folded = Some(value()),
            "--check-metrics" => check_metrics = Some(value()),
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_string()),
            _ => usage(),
        }
    }

    if let Some(path) = check_folded {
        match parse_folded(&read(&path)) {
            Ok(lines) => println!("adbt_prof: {path}: {} folded lines ok", lines.len()),
            Err(why) => fail(&path, &why),
        }
        return;
    }
    if let Some(path) = check_metrics {
        match validate_metrics_jsonl(&read(&path)) {
            Ok(n) => println!("adbt_prof: {path}: {n} metrics lines ok"),
            Err(why) => fail(&path, &why),
        }
        return;
    }

    let Some(path) = file else { usage() };
    let doc = match export::validate(&read(&path)) {
        Ok(doc) => doc,
        Err(why) => fail(&path, &why),
    };
    if ci {
        println!(
            "adbt_prof: {path}: schema ok ({} vcpus, {} merged rows)",
            doc.vcpus.len(),
            doc.merged.len()
        );
        return;
    }

    if let Some(out) = flamegraph {
        let cost = cost.unwrap_or(Metric::ScFail);
        let folded = render_folded(&doc.scheme, &doc.merged, cost);
        if let Err(why) = parse_folded(&folded) {
            fail("internal: rendered folded output is invalid", &why);
        }
        if let Err(e) = std::fs::write(&out, &folded) {
            fail(&out, &e.to_string());
        }
        println!(
            "adbt_prof: wrote {} folded lines (cost {}) to {out}",
            folded.lines().count(),
            cost.name()
        );
        return;
    }

    println!(
        "profile: scheme={} clock={} vcpus={} rows={}",
        doc.scheme,
        doc.clock,
        doc.vcpus.len(),
        doc.merged.len()
    );
    println!();
    match metric {
        Some(m) => print_table(&doc, m, top),
        None => {
            for m in Metric::ALL {
                print_table(&doc, m, top);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adbt_profile::Tier;

    fn row(pc: u32, fails: u64) -> ProfRow {
        let mut counts = [0u64; Metric::COUNT];
        counts[Metric::ScFail as usize] = fails;
        ProfRow {
            pc,
            tier: Tier::Block,
            symbol: "loop+0x4".to_string(),
            insn: adbt_isa::encode(&adbt_isa::Insn::Svc { imm: 0 }),
            counts,
        }
    }

    #[test]
    fn top_rows_ranks_and_truncates() {
        let rows = vec![row(0x10, 1), row(0x20, 9), row(0x30, 0), row(0x40, 9)];
        let top = top_rows(&rows, Metric::ScFail, 2);
        assert_eq!(top.len(), 2);
        assert_eq!((top[0].pc, top[1].pc), (0x20, 0x40), "ties break by pc");
    }

    /// Byte-stability regression for `--ci` runs: the top-N order is a
    /// pure function of the row *values* — (metric desc, then (pc, tier)
    /// asc) — never of the input order, so two permutations of the same
    /// rows render identical tables across rebuilds.
    #[test]
    fn top_rows_order_is_independent_of_input_order() {
        let tiered = |pc: u32, tier: Tier, fails: u64| ProfRow {
            tier,
            ..row(pc, fails)
        };
        // Adversarial ties: equal metric values across different PCs,
        // and the same PC at both tiers.
        let rows = vec![
            tiered(0x40, Tier::Super, 9),
            row(0x10, 9),
            tiered(0x10, Tier::Super, 9),
            row(0x40, 9),
            row(0x20, 3),
            row(0x30, 9),
        ];
        let render = |rows: &[ProfRow]| {
            top_rows(rows, Metric::ScFail, 10)
                .iter()
                .map(|r| format!("{} {:#x} {}\n", r.get(Metric::ScFail), r.pc, r.tier.name()))
                .collect::<String>()
        };
        let forward = render(&rows);
        let mut reversed = rows.clone();
        reversed.reverse();
        assert_eq!(forward, render(&reversed), "order must not leak through");
        let expected: Vec<(u32, Tier)> = vec![
            (0x10, Tier::Block),
            (0x10, Tier::Super),
            (0x30, Tier::Block),
            (0x40, Tier::Block),
            (0x40, Tier::Super),
            (0x20, Tier::Block),
        ];
        let got: Vec<(u32, Tier)> = top_rows(&rows, Metric::ScFail, 10)
            .iter()
            .map(|r| (r.pc, r.tier))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn context_disassembles_or_falls_back() {
        assert_eq!(context(&row(0x10, 1)), "svc #0");
        let garbage = ProfRow {
            insn: 0xFFFF_FFFF,
            ..row(0x10, 1)
        };
        assert!(context(&garbage).starts_with(".word"));
    }
}
