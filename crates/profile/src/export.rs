//! The `.prof` document: JSON written by `adbt_run --profile`, read by
//! `adbt_prof`.
//!
//! Hand-rolled writer (the workspace builds air-gapped, no JSON crate);
//! the parser reuses the minimal recursive-descent JSON parser from the
//! trace validator. [`validate`] is the schema gate `adbt_prof --ci`
//! runs on its own input: schema tag, metric-name vector matching this
//! build's [`Metric::ALL`], well-formed entries, and a merged section
//! that is exactly the per-vCPU sum.
//!
//! Entries carry the raw instruction word at the charged PC (read from
//! guest memory *after* the run, so SMC patches show their final form)
//! and the nearest preceding symbol — `adbt_prof` decodes the word with
//! `adbt-isa` for disassembly context and uses the symbol as the
//! flamegraph's `guest_fn` frame.

use crate::{Metric, Overflow, ProfileEntry, Tier};
use adbt_trace::validate::{parse_json, Json};

/// One exported profile row: the counts plus the context the consumers
/// render (symbol, raw instruction word at the PC).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfRow {
    /// The attributed guest PC.
    pub pc: u32,
    /// The tier the samples were taken in.
    pub tier: Tier,
    /// Nearest preceding symbol, rendered `name+0xOFF` (`?` when the
    /// image had no symbol at or before the PC).
    pub symbol: String,
    /// The raw guest instruction word at `pc` at export time.
    pub insn: u32,
    /// Per-[`Metric`] counts, wire order.
    pub counts: [u64; Metric::COUNT],
}

impl ProfRow {
    /// The value of one metric.
    pub fn get(&self, metric: Metric) -> u64 {
        self.counts[metric as usize]
    }

    /// The `guest_fn` flamegraph frame: the symbol's base name (offset
    /// stripped).
    pub fn guest_fn(&self) -> &str {
        self.symbol.split('+').next().unwrap_or("?")
    }
}

/// One vCPU's section of the document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfVcpu {
    /// The vCPU's tid.
    pub tid: u32,
    /// The vCPU's rows, sorted by `(pc, tier)`.
    pub rows: Vec<ProfRow>,
    /// The vCPU's overflow bucket.
    pub overflow: Overflow,
}

/// A parsed (or to-be-rendered) `.prof` document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfDoc {
    /// The scheme the run used (its CLI name).
    pub scheme: String,
    /// `"ns"` for threaded runs, `"insns"` for deterministic modes —
    /// which clock the duration metrics were measured in (deterministic
    /// modes zero them; the tag keeps consumers honest).
    pub clock: String,
    /// Per-vCPU sections, sorted by tid.
    pub vcpus: Vec<ProfVcpu>,
    /// The machine-wide merge (sum of the per-vCPU sections).
    pub merged: Vec<ProfRow>,
}

/// The schema tag every document starts with.
pub const SCHEMA: &str = "adbt-prof-v1";

/// Resolves a `ProfileEntry` into a `ProfRow` via caller-supplied
/// context lookups (symbol and instruction word at a PC).
pub fn resolve_rows(
    entries: &[ProfileEntry],
    mut symbol: impl FnMut(u32) -> String,
    mut insn: impl FnMut(u32) -> u32,
) -> Vec<ProfRow> {
    entries
        .iter()
        .map(|e| ProfRow {
            pc: e.pc,
            tier: e.tier,
            symbol: symbol(e.pc),
            insn: insn(e.pc),
            counts: e.counts,
        })
        .collect()
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn render_counts(counts: &[u64; Metric::COUNT]) -> String {
    let cells: Vec<String> = counts.iter().map(|c| c.to_string()).collect();
    format!("[{}]", cells.join(","))
}

fn render_row(row: &ProfRow) -> String {
    format!(
        "{{\"pc\":\"{:#010x}\",\"tier\":\"{}\",\"symbol\":{},\"insn\":{},\"counts\":{}}}",
        row.pc,
        row.tier.name(),
        json_string(&row.symbol),
        row.insn,
        render_counts(&row.counts)
    )
}

fn render_overflow(overflow: &Overflow) -> String {
    format!(
        "{{\"drops\":{},\"counts\":{}}}",
        overflow.drops,
        render_counts(&overflow.counts)
    )
}

/// Renders the document.
pub fn render(doc: &ProfDoc) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\":\"{SCHEMA}\",\"scheme\":{},\"clock\":{},\n\"metrics\":[",
        json_string(&doc.scheme),
        json_string(&doc.clock)
    ));
    for (i, metric) in Metric::ALL.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(metric.name()));
    }
    out.push_str("],\n\"vcpus\":[");
    for (i, vcpu) in doc.vcpus.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n{{\"tid\":{},\"overflow\":{},\"entries\":[",
            vcpu.tid,
            render_overflow(&vcpu.overflow)
        ));
        for (j, row) in vcpu.rows.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(&render_row(row));
        }
        out.push_str("]}");
    }
    out.push_str("],\n\"merged\":[");
    for (j, row) in doc.merged.iter().enumerate() {
        if j > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&render_row(row));
    }
    out.push_str("]}\n");
    out
}

fn parse_u32_field(obj: &Json, key: &str, ctx: &str) -> Result<u32, String> {
    match obj.get(key) {
        Some(Json::Num(n)) if *n >= 0.0 && *n <= u32::MAX as f64 => Ok(*n as u32),
        Some(Json::Str(s)) => {
            let hex = s.strip_prefix("0x").unwrap_or(s);
            u32::from_str_radix(hex, 16).map_err(|_| format!("{ctx}: bad {key} `{s}`"))
        }
        _ => Err(format!("{ctx}: missing numeric {key}")),
    }
}

fn parse_u64_field(obj: &Json, key: &str, ctx: &str) -> Result<u64, String> {
    match obj.get(key).and_then(Json::as_num) {
        Some(n) if n >= 0.0 => Ok(n as u64),
        _ => Err(format!("{ctx}: missing numeric {key}")),
    }
}

fn parse_counts(obj: &Json, ctx: &str) -> Result<[u64; Metric::COUNT], String> {
    let Some(Json::Arr(items)) = obj.get("counts") else {
        return Err(format!("{ctx}: missing counts array"));
    };
    if items.len() != Metric::COUNT {
        return Err(format!(
            "{ctx}: counts has {} cells, want {}",
            items.len(),
            Metric::COUNT
        ));
    }
    let mut counts = [0u64; Metric::COUNT];
    for (slot, item) in counts.iter_mut().zip(items) {
        *slot = item
            .as_num()
            .filter(|n| *n >= 0.0)
            .ok_or_else(|| format!("{ctx}: non-numeric count"))? as u64;
    }
    Ok(counts)
}

fn parse_row(obj: &Json, ctx: &str) -> Result<ProfRow, String> {
    let pc = parse_u32_field(obj, "pc", ctx)?;
    let tier = obj
        .get("tier")
        .and_then(Json::as_str)
        .and_then(Tier::from_name)
        .ok_or_else(|| format!("{ctx}: missing or unknown tier"))?;
    let symbol = obj
        .get("symbol")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{ctx}: missing symbol"))?
        .to_string();
    let insn = parse_u32_field(obj, "insn", ctx)?;
    Ok(ProfRow {
        pc,
        tier,
        symbol,
        insn,
        counts: parse_counts(obj, ctx)?,
    })
}

fn parse_overflow(obj: &Json, ctx: &str) -> Result<Overflow, String> {
    let Some(overflow) = obj.get("overflow") else {
        return Err(format!("{ctx}: missing overflow"));
    };
    Ok(Overflow {
        drops: parse_u64_field(overflow, "drops", ctx)?,
        counts: parse_counts(overflow, ctx)?,
    })
}

/// Parses a `.prof` document, checking the schema tag and the metric
/// vector against this build.
pub fn parse(text: &str) -> Result<ProfDoc, String> {
    let doc = parse_json(text)?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(SCHEMA) => {}
        Some(other) => return Err(format!("unknown schema `{other}` (want {SCHEMA})")),
        None => return Err("missing schema tag".to_string()),
    }
    let scheme = doc
        .get("scheme")
        .and_then(Json::as_str)
        .ok_or("missing scheme")?
        .to_string();
    let clock = doc
        .get("clock")
        .and_then(Json::as_str)
        .ok_or("missing clock")?
        .to_string();
    let Some(Json::Arr(metrics)) = doc.get("metrics") else {
        return Err("missing metrics array".to_string());
    };
    let expected: Vec<&str> = Metric::ALL.into_iter().map(Metric::name).collect();
    let got: Vec<&str> = metrics.iter().filter_map(Json::as_str).collect();
    if got != expected {
        return Err(format!(
            "metric vector mismatch: document has {got:?}, this build wants {expected:?}"
        ));
    }
    let Some(Json::Arr(vcpus)) = doc.get("vcpus") else {
        return Err("missing vcpus array".to_string());
    };
    let mut parsed_vcpus = Vec::with_capacity(vcpus.len());
    for (i, vcpu) in vcpus.iter().enumerate() {
        let ctx = format!("vcpu section {i}");
        let tid = parse_u32_field(vcpu, "tid", &ctx)?;
        let Some(Json::Arr(entries)) = vcpu.get("entries") else {
            return Err(format!("{ctx}: missing entries array"));
        };
        let mut rows = Vec::with_capacity(entries.len());
        for (j, entry) in entries.iter().enumerate() {
            rows.push(parse_row(entry, &format!("{ctx} entry {j}"))?);
        }
        parsed_vcpus.push(ProfVcpu {
            tid,
            rows,
            overflow: parse_overflow(vcpu, &ctx)?,
        });
    }
    let Some(Json::Arr(merged)) = doc.get("merged") else {
        return Err("missing merged array".to_string());
    };
    let mut merged_rows = Vec::with_capacity(merged.len());
    for (j, entry) in merged.iter().enumerate() {
        merged_rows.push(parse_row(entry, &format!("merged entry {j}"))?);
    }
    Ok(ProfDoc {
        scheme,
        clock,
        vcpus: parsed_vcpus,
        merged: merged_rows,
    })
}

/// The full schema gate (`adbt_prof --ci`): parse, then check that the
/// merged section is exactly the per-vCPU sum per `(pc, tier, metric)`
/// — the same merged-equals-Σ discipline the stats plane keeps.
pub fn validate(text: &str) -> Result<ProfDoc, String> {
    let doc = parse(text)?;
    let mut summed: Vec<(u32, Tier, [u64; Metric::COUNT])> = Vec::new();
    for vcpu in &doc.vcpus {
        for row in &vcpu.rows {
            match summed
                .iter_mut()
                .find(|(pc, tier, _)| *pc == row.pc && *tier == row.tier)
            {
                Some((_, _, counts)) => {
                    for (dst, src) in counts.iter_mut().zip(row.counts) {
                        *dst += src;
                    }
                }
                None => summed.push((row.pc, row.tier, row.counts)),
            }
        }
    }
    if summed.len() != doc.merged.len() {
        return Err(format!(
            "merged has {} rows, per-vCPU sum has {}",
            doc.merged.len(),
            summed.len()
        ));
    }
    for row in &doc.merged {
        let Some((_, _, counts)) = summed
            .iter()
            .find(|(pc, tier, _)| *pc == row.pc && *tier == row.tier)
        else {
            return Err(format!(
                "merged row {:#010x}/{} absent from per-vCPU sections",
                row.pc,
                row.tier.name()
            ));
        };
        if *counts != row.counts {
            return Err(format!(
                "merged row {:#010x}/{} ≠ per-vCPU sum",
                row.pc,
                row.tier.name()
            ));
        }
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(pc: u32, fails: u64) -> ProfRow {
        let mut counts = [0u64; Metric::COUNT];
        counts[Metric::ScFail as usize] = fails;
        ProfRow {
            pc,
            tier: Tier::Block,
            symbol: format!("f+{:#x}", pc & 0xfff),
            insn: 0xE152_3F9C,
            counts,
        }
    }

    fn doc() -> ProfDoc {
        ProfDoc {
            scheme: "hst".to_string(),
            clock: "ns".to_string(),
            vcpus: vec![
                ProfVcpu {
                    tid: 1,
                    rows: vec![row(0x1_0000, 2)],
                    overflow: Overflow::default(),
                },
                ProfVcpu {
                    tid: 2,
                    rows: vec![row(0x1_0000, 3), row(0x1_0010, 1)],
                    overflow: Overflow::default(),
                },
            ],
            merged: vec![row(0x1_0000, 5), row(0x1_0010, 1)],
        }
    }

    #[test]
    fn render_parse_round_trips() {
        let original = doc();
        let text = render(&original);
        let parsed = validate(&text).expect("own output validates");
        assert_eq!(parsed, original);
    }

    #[test]
    fn validate_rejects_cooked_merges() {
        let mut cooked = doc();
        cooked.merged[0].counts[Metric::ScFail as usize] += 1;
        let why = validate(&render(&cooked)).unwrap_err();
        assert!(why.contains("≠ per-vCPU sum"), "{why}");

        let mut cooked = doc();
        cooked.merged.pop();
        let why = validate(&render(&cooked)).unwrap_err();
        assert!(why.contains("rows"), "{why}");
    }

    #[test]
    fn parse_rejects_schema_and_metric_drift() {
        let text = render(&doc()).replace(SCHEMA, "adbt-prof-v0");
        assert!(parse(&text).unwrap_err().contains("schema"));
        let text = render(&doc()).replace("\"sc_fail\"", "\"sc_failz\"");
        assert!(parse(&text).unwrap_err().contains("metric vector"));
        assert!(parse("{}").is_err());
        assert!(parse("not json").is_err());
    }

    #[test]
    fn guest_fn_strips_the_offset() {
        assert_eq!(row(0x12, 0).guest_fn(), "f");
        let bare = ProfRow {
            symbol: "?".to_string(),
            ..row(0, 0)
        };
        assert_eq!(bare.guest_fn(), "?");
    }
}
