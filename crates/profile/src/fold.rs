//! Collapsed-stack ("folded") flamegraph export.
//!
//! One line per profile row, `frame;frame;frame cost` — the format
//! Brendan Gregg's `flamegraph.pl` and every compatible renderer eat.
//! Our synthetic stack is `scheme;tier;guest_fn;0xPC`, so the graph
//! groups cost by scheme, then tier, then guest function, with the
//! exact instruction as the leaf. Air-gapped: no renderer ships in
//! tree, but [`parse_folded`] is the in-tree validator CI runs on the
//! exporter's own output.

use crate::export::ProfRow;
use crate::Metric;

/// One parsed folded line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FoldedLine {
    /// The root-to-leaf frame names.
    pub frames: Vec<String>,
    /// The sample cost.
    pub cost: u64,
}

/// Renders merged profile rows as folded stacks, charging `metric` as
/// the cost. Zero-cost rows are skipped (a folded line with cost 0 is
/// legal but renders as nothing and bloats the file).
pub fn render_folded(scheme: &str, rows: &[ProfRow], metric: Metric) -> String {
    let mut out = String::new();
    for row in rows {
        let cost = row.get(metric);
        if cost == 0 {
            continue;
        }
        out.push_str(&format!(
            "{};{};{};{:#010x} {}\n",
            sanitize(scheme),
            row.tier.name(),
            sanitize(row.guest_fn()),
            row.pc,
            cost
        ));
    }
    out
}

/// Frame names may not contain the structural characters of the
/// format (`;` separates frames, space separates stack from cost).
fn sanitize(frame: &str) -> String {
    frame
        .chars()
        .map(|c| {
            if c == ';' || c.is_whitespace() {
                '_'
            } else {
                c
            }
        })
        .collect()
}

/// The in-tree validator: parses folded lines, rejecting empty frames,
/// missing costs, and non-numeric costs. Blank lines are ignored.
pub fn parse_folded(text: &str) -> Result<Vec<FoldedLine>, String> {
    let mut lines = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let n = i + 1;
        let Some((stack, cost)) = line.rsplit_once(' ') else {
            return Err(format!("line {n}: no cost field"));
        };
        let cost: u64 = cost
            .parse()
            .map_err(|_| format!("line {n}: non-numeric cost `{cost}`"))?;
        let frames: Vec<String> = stack.split(';').map(str::to_string).collect();
        if frames.is_empty() || frames.iter().any(String::is_empty) {
            return Err(format!("line {n}: empty frame in `{stack}`"));
        }
        lines.push(FoldedLine { frames, cost });
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tier;

    fn row(pc: u32, symbol: &str, fails: u64, waits: u64) -> ProfRow {
        let mut counts = [0u64; Metric::COUNT];
        counts[Metric::ScFail as usize] = fails;
        counts[Metric::ExclWaitNs as usize] = waits;
        ProfRow {
            pc,
            tier: Tier::Super,
            symbol: symbol.to_string(),
            insn: 0,
            counts,
        }
    }

    #[test]
    fn rendered_output_validates_and_skips_zero_cost() {
        let rows = vec![
            row(0x1_0000, "victim+0x0", 7, 0),
            row(0x1_0010, "attacker+0x4", 0, 900),
        ];
        let folded = render_folded("pst", &rows, Metric::ScFail);
        let lines = parse_folded(&folded).expect("own output validates");
        assert_eq!(lines.len(), 1, "zero-cost row must be dropped");
        assert_eq!(
            lines[0].frames,
            vec!["pst", "super", "victim", "0x00010000"]
        );
        assert_eq!(lines[0].cost, 7);

        let by_wait = render_folded("pst", &rows, Metric::ExclWaitNs);
        let lines = parse_folded(&by_wait).unwrap();
        assert_eq!(lines[0].frames[2], "attacker");
        assert_eq!(lines[0].cost, 900);
    }

    #[test]
    fn sanitize_defangs_structural_characters() {
        let rows = vec![row(0x20, "a;b c+0x0", 1, 0)];
        let folded = render_folded("h s;t", &rows, Metric::ScFail);
        let lines = parse_folded(&folded).unwrap();
        assert_eq!(lines[0].frames[0], "h_s_t");
        assert_eq!(lines[0].frames[2], "a_b_c");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_folded("a;b").unwrap_err().contains("no cost"));
        assert!(parse_folded("a;b x").unwrap_err().contains("non-numeric"));
        assert!(parse_folded("a;;b 3").unwrap_err().contains("empty frame"));
        assert!(parse_folded("\n\n").unwrap().is_empty());
    }
}
