//! # adbt-profile — the guest-PC contention profiler
//!
//! Machine-wide counters (`VcpuStats`) say *how much* a scheme pays for
//! atomic emulation; the flight recorder says *when*. This crate says
//! **where**: a fixed-size, open-addressed hash profile per vCPU, keyed
//! by guest PC (and tier), charging SC failures, retry streaks,
//! exclusive-entry waits, HTM aborts by reason, monitor clears, SMC
//! invalidations, false sharing, and tier deopts to the guest address
//! that incurred them.
//!
//! The discipline mirrors the flight recorder ([`adbt_trace`]): the
//! *disabled* path is a single predicted branch (`Option::is_some` on
//! the context's handle), and the *enabled* path is a bounded probe over
//! a pre-allocated table with `Relaxed` atomic loads and stores — no
//! locks, no fences, no allocation, single writer (the owning vCPU
//! thread). Readers (the watchdog, the periodic metrics sampler, the
//! end-of-run exporters) snapshot concurrently and never block a
//! writer; since every cell is one `AtomicU64`, the worst a racing read
//! observes is a value one increment stale.
//!
//! Attribution PC: the engine keeps a "current segment PC" per vCPU —
//! the entry PC of the translation block being executed, updated at
//! every superblock safepoint so a sample taken inside a stitched
//! superblock re-maps to the *original* block's guest PC (the same PC a
//! deopt would resume at). Costs are therefore block-granular in the
//! baseline tier and segment-granular (= original block PCs) inside
//! superblocks; the tier rides along in the key so the two never mix.
//!
//! Overflow policy: the table holds [`PcProfile::CAPACITY`] slots and
//! probes at most [`PcProfile::MAX_PROBE`] of them per charge. A charge
//! that finds neither its own slot nor an empty one lands in the
//! per-metric overflow bucket and bumps the dropped-charge counter —
//! the totals stay exact, only the attribution of the overflow is lost,
//! and the exporters surface the drop count so a saturated profile is
//! never mistaken for a quiet one.
//!
//! Consumers: [`export`] renders and parses the `.prof` JSON document
//! (`adbt_run --profile` writes it, `adbt_prof` reads it), [`fold`]
//! renders and validates collapsed-stack flamegraph lines, and
//! [`metrics`] defines the machine-readable JSONL snapshot schema
//! (`adbt_run --metrics` / `--stats-json`).

pub mod export;
pub mod fold;
pub mod metrics;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What a profiled cost is charged as. The order is the wire order of
/// every `counts` array in the `.prof` document — append-only.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Metric {
    /// An SC (store-conditional) failed — organically or injected.
    ScFail = 0,
    /// A completed SC-retry streak's length, charged (in full) to the
    /// PC whose SC finally succeeded: `sc_streak / sc_fail` at one PC
    /// is its mean retries-before-success.
    ScStreak = 1,
    /// This vCPU entered the machine's exclusive (stop-the-world)
    /// section.
    ExclEntry = 2,
    /// Nanoseconds this vCPU waited to *enter* the exclusive section
    /// (zero in deterministic modes, mirroring the trace plane).
    ExclWaitNs = 3,
    /// Nanoseconds this vCPU spent parked at a safepoint for someone
    /// else's exclusive section (zero in deterministic modes).
    ParkNs = 4,
    /// HTM transaction aborted: transactional conflict.
    HtmConflict = 5,
    /// HTM transaction aborted: read/write-set capacity exceeded.
    HtmCapacity = 6,
    /// HTM transaction aborted: explicit abort or engine interference.
    HtmOther = 7,
    /// The vCPU's exclusive monitor was cleared by something other than
    /// its own SC (clrex, chaos, remote interference).
    MonitorClear = 8,
    /// A translated block at this guest PC was invalidated (SMC store
    /// or chaos storm) — charged to the *victim* block's PC, resolved
    /// through the translation cache.
    Invalidation = 9,
    /// A store hit a tracked code page but no translation actually
    /// covered it (SMC false sharing) — charged to the storing block.
    SmcFalseSharing = 10,
    /// A monitored-page fault taken for someone else's unrelated word
    /// (the paper's false-sharing fault, PST family).
    FalseSharing = 11,
    /// Execution left a superblock through a deopt side exit; charged
    /// to the resume PC.
    Deopt = 12,
    /// A hot block at this PC was promoted into a tier-2 superblock.
    Promote = 13,
}

impl Metric {
    /// Every metric, in wire (`counts` array) order.
    pub const ALL: [Metric; 14] = [
        Metric::ScFail,
        Metric::ScStreak,
        Metric::ExclEntry,
        Metric::ExclWaitNs,
        Metric::ParkNs,
        Metric::HtmConflict,
        Metric::HtmCapacity,
        Metric::HtmOther,
        Metric::MonitorClear,
        Metric::Invalidation,
        Metric::SmcFalseSharing,
        Metric::FalseSharing,
        Metric::Deopt,
        Metric::Promote,
    ];

    /// The number of metrics (the length of every `counts` array).
    pub const COUNT: usize = Metric::ALL.len();

    /// The stable snake-case name used in `.prof` documents, metrics
    /// JSONL, and `adbt_prof` table headers.
    pub fn name(self) -> &'static str {
        match self {
            Metric::ScFail => "sc_fail",
            Metric::ScStreak => "sc_streak",
            Metric::ExclEntry => "excl_entry",
            Metric::ExclWaitNs => "excl_wait_ns",
            Metric::ParkNs => "park_ns",
            Metric::HtmConflict => "htm_conflict",
            Metric::HtmCapacity => "htm_capacity",
            Metric::HtmOther => "htm_other",
            Metric::MonitorClear => "monitor_clear",
            Metric::Invalidation => "invalidation",
            Metric::SmcFalseSharing => "smc_false_sharing",
            Metric::FalseSharing => "false_sharing",
            Metric::Deopt => "deopt",
            Metric::Promote => "promote",
        }
    }

    /// Looks a metric up by its [`name`](Metric::name).
    pub fn from_name(name: &str) -> Option<Metric> {
        Metric::ALL.into_iter().find(|m| m.name() == name)
    }

    /// Whether the metric is a duration (nanoseconds) rather than a
    /// count — duration metrics are zeroed in deterministic modes so
    /// profiling can never perturb a reproducible run.
    pub fn is_duration(self) -> bool {
        matches!(self, Metric::ExclWaitNs | Metric::ParkNs)
    }
}

/// Which translation tier a sample was taken in. Part of the hash key:
/// the same guest PC executing as a baseline block and as a superblock
/// segment gets two entries, so tier cost shapes stay separable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Baseline block-granular translation.
    Block,
    /// Tier-2 superblock (sample PC already re-mapped to the segment's
    /// original block PC).
    Super,
}

impl Tier {
    /// Stable wire name (`.prof` documents, flamegraph frames).
    pub fn name(self) -> &'static str {
        match self {
            Tier::Block => "block",
            Tier::Super => "super",
        }
    }

    /// Looks a tier up by its [`name`](Tier::name).
    pub fn from_name(name: &str) -> Option<Tier> {
        match name {
            "block" => Some(Tier::Block),
            "super" => Some(Tier::Super),
            _ => None,
        }
    }

    fn bit(self) -> u64 {
        match self {
            Tier::Block => 0,
            Tier::Super => 1,
        }
    }

    fn from_bit(bit: u64) -> Tier {
        if bit == 0 {
            Tier::Block
        } else {
            Tier::Super
        }
    }
}

/// One decoded profile row: a `(pc, tier)` key and its metric counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProfileEntry {
    /// The guest PC costs were charged to (a block entry PC, or the
    /// original block PC of a superblock segment).
    pub pc: u32,
    /// The tier the samples were taken in.
    pub tier: Tier,
    /// One slot per [`Metric`], in [`Metric::ALL`] order.
    pub counts: [u64; Metric::COUNT],
}

impl ProfileEntry {
    /// The value of one metric.
    pub fn get(&self, metric: Metric) -> u64 {
        self.counts[metric as usize]
    }

    /// The sum of all count-typed (non-duration) metrics — the generic
    /// "how contended is this PC" rank used when no metric is chosen.
    pub fn total_events(&self) -> u64 {
        Metric::ALL
            .into_iter()
            .filter(|m| !m.is_duration())
            .map(|m| self.get(m))
            .sum()
    }
}

/// What fell off the bounded table: per-metric totals charged past the
/// probe limit, plus how many individual charges were dropped from
/// attribution. Totals stay exact; only the *location* of these is
/// lost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Overflow {
    /// Per-[`Metric`] amounts that could not be attributed to a PC.
    pub counts: [u64; Metric::COUNT],
    /// Number of charge calls that overflowed.
    pub drops: u64,
}

/// One vCPU's decoded profile: the live rows plus the overflow bucket.
#[derive(Clone, Debug, Default)]
pub struct ProfileSnapshot {
    /// Live rows, sorted by `(pc, tier)` for deterministic export.
    pub entries: Vec<ProfileEntry>,
    /// The overflow bucket.
    pub overflow: Overflow,
}

/// Tag encoding: `(pc << 2) | (tier << 1) | 1`. The low bit makes every
/// occupied tag nonzero (0 = empty slot), and pc/tier round-trip
/// losslessly because a u64 tag has headroom above the u32 pc.
fn tag_of(pc: u32, tier: Tier) -> u64 {
    ((pc as u64) << 2) | (tier.bit() << 1) | 1
}

/// The per-vCPU attribution table: fixed capacity, open addressing with
/// linear probing bounded by [`PcProfile::MAX_PROBE`], single writer.
pub struct PcProfile {
    tid: u32,
    /// Slot keys (`tag_of`, 0 = empty).
    tags: Box<[AtomicU64]>,
    /// `CAPACITY × Metric::COUNT` counters, row-major per slot.
    counts: Box<[AtomicU64]>,
    /// Per-metric totals charged past the probe bound.
    overflow: [AtomicU64; Metric::COUNT],
    /// Charge calls that overflowed.
    drops: AtomicU64,
}

impl PcProfile {
    /// Slots per vCPU (power of two; 4096 × (1 tag + 14 counters) × 8 B
    /// ≈ 480 KiB — fixed at construction, nothing on the hot path).
    pub const CAPACITY: usize = 1 << 12;
    /// Linear-probe bound per charge: past this, the charge goes to the
    /// overflow bucket instead of evicting or rehashing.
    pub const MAX_PROBE: usize = 16;

    /// An empty table owned by vCPU `tid`.
    pub fn new(tid: u32) -> PcProfile {
        PcProfile {
            tid,
            tags: (0..Self::CAPACITY).map(|_| AtomicU64::new(0)).collect(),
            counts: (0..Self::CAPACITY * Metric::COUNT)
                .map(|_| AtomicU64::new(0))
                .collect(),
            overflow: std::array::from_fn(|_| AtomicU64::new(0)),
            drops: AtomicU64::new(0),
        }
    }

    /// The owning vCPU's tid.
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Fibonacci-hash home slot for a tag.
    fn home(tag: u64) -> usize {
        (tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - 12)) as usize
    }

    /// Charges `amount` of `metric` to `(pc, tier)`. Writer-side only
    /// (the owning vCPU's thread): tag publication and counter bumps
    /// are plain `Relaxed` load/store pairs — there is exactly one
    /// writer, and readers tolerate a stale value.
    #[inline]
    pub fn charge(&self, pc: u32, tier: Tier, metric: Metric, amount: u64) {
        if amount == 0 && metric.is_duration() {
            // Deterministic modes zero durations; skip the probe too.
            return;
        }
        let tag = tag_of(pc, tier);
        let mut idx = Self::home(tag) & (Self::CAPACITY - 1);
        for _ in 0..Self::MAX_PROBE {
            let cur = self.tags[idx].load(Ordering::Relaxed);
            if cur == tag || cur == 0 {
                if cur == 0 {
                    self.tags[idx].store(tag, Ordering::Relaxed);
                }
                let cell = &self.counts[idx * Metric::COUNT + metric as usize];
                let v = cell.load(Ordering::Relaxed);
                cell.store(v.wrapping_add(amount), Ordering::Relaxed);
                return;
            }
            idx = (idx + 1) & (Self::CAPACITY - 1);
        }
        let cell = &self.overflow[metric as usize];
        let v = cell.load(Ordering::Relaxed);
        cell.store(v.wrapping_add(amount), Ordering::Relaxed);
        let d = self.drops.load(Ordering::Relaxed);
        self.drops.store(d.wrapping_add(1), Ordering::Relaxed);
    }

    /// Decodes the live rows (sorted by `(pc, tier)`) and the overflow
    /// bucket. Safe to call while the writer runs: counters are single
    /// `AtomicU64`s, so a racing read is at most one increment stale.
    pub fn snapshot(&self) -> ProfileSnapshot {
        let mut entries = Vec::new();
        for idx in 0..Self::CAPACITY {
            let tag = self.tags[idx].load(Ordering::Relaxed);
            if tag == 0 {
                continue;
            }
            let mut counts = [0u64; Metric::COUNT];
            for (m, slot) in counts.iter_mut().enumerate() {
                *slot = self.counts[idx * Metric::COUNT + m].load(Ordering::Relaxed);
            }
            if counts.iter().all(|&c| c == 0) {
                continue;
            }
            entries.push(ProfileEntry {
                pc: (tag >> 2) as u32,
                tier: Tier::from_bit((tag >> 1) & 1),
                counts,
            });
        }
        entries.sort_by_key(|e| (e.pc, e.tier));
        let mut overflow = Overflow {
            drops: self.drops.load(Ordering::Relaxed),
            ..Overflow::default()
        };
        for (m, slot) in overflow.counts.iter_mut().enumerate() {
            *slot = self.overflow[m].load(Ordering::Relaxed);
        }
        ProfileSnapshot { entries, overflow }
    }
}

/// The machine-wide recorder: hands each vCPU its private table and
/// aggregates snapshots for the exporters, the watchdog, and the
/// metrics sampler. Mirrors `TraceRecorder`: table creation happens
/// once per vCPU at context setup, never on the hot path.
#[derive(Default)]
pub struct ProfileRecorder {
    profiles: Mutex<Vec<Arc<PcProfile>>>,
}

impl ProfileRecorder {
    /// An empty recorder.
    pub fn new() -> ProfileRecorder {
        ProfileRecorder::default()
    }

    /// The table for `tid`, created on first use.
    pub fn profile(&self, tid: u32) -> Arc<PcProfile> {
        let mut profiles = self.profiles.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(p) = profiles.iter().find(|p| p.tid() == tid) {
            return Arc::clone(p);
        }
        let p = Arc::new(PcProfile::new(tid));
        profiles.push(Arc::clone(&p));
        p
    }

    /// Every vCPU's snapshot, sorted by tid.
    pub fn snapshot_all(&self) -> Vec<(u32, ProfileSnapshot)> {
        let profiles = self.profiles.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<(u32, ProfileSnapshot)> =
            profiles.iter().map(|p| (p.tid(), p.snapshot())).collect();
        out.sort_by_key(|&(tid, _)| tid);
        out
    }

    /// The machine-wide merge: per-vCPU rows summed by `(pc, tier)`,
    /// overflow buckets summed — so merged totals are exactly the
    /// per-vCPU sums (the same discipline `VcpuStats::merge` keeps).
    pub fn merged(&self) -> ProfileSnapshot {
        merge_snapshots(self.snapshot_all().iter().map(|(_, s)| s))
    }

    /// The top `n` rows of one vCPU's table by a metric (or by total
    /// events when `metric` is `None`), descending — the watchdog's
    /// per-stalled-vCPU attribution digest.
    pub fn top_n(&self, tid: u32, metric: Option<Metric>, n: usize) -> Vec<ProfileEntry> {
        let snapshot = self.profile(tid).snapshot();
        top_entries(&snapshot.entries, metric, n)
    }
}

/// Merges any number of snapshots by `(pc, tier)`.
pub fn merge_snapshots<'a>(
    snapshots: impl IntoIterator<Item = &'a ProfileSnapshot>,
) -> ProfileSnapshot {
    let mut merged: Vec<ProfileEntry> = Vec::new();
    let mut overflow = Overflow::default();
    for snap in snapshots {
        for entry in &snap.entries {
            match merged
                .iter_mut()
                .find(|e| e.pc == entry.pc && e.tier == entry.tier)
            {
                Some(e) => {
                    for (dst, src) in e.counts.iter_mut().zip(entry.counts) {
                        *dst += src;
                    }
                }
                None => merged.push(*entry),
            }
        }
        for (dst, src) in overflow.counts.iter_mut().zip(snap.overflow.counts) {
            *dst += src;
        }
        overflow.drops += snap.overflow.drops;
    }
    merged.sort_by_key(|e| (e.pc, e.tier));
    ProfileSnapshot {
        entries: merged,
        overflow,
    }
}

/// The top `n` entries by `metric` (total events when `None`),
/// descending, zero-valued rows dropped.
pub fn top_entries(
    entries: &[ProfileEntry],
    metric: Option<Metric>,
    n: usize,
) -> Vec<ProfileEntry> {
    let value = |e: &ProfileEntry| match metric {
        Some(m) => e.get(m),
        None => e.total_events(),
    };
    let mut ranked: Vec<ProfileEntry> = entries.iter().copied().filter(|e| value(e) > 0).collect();
    ranked.sort_by_key(|e| (std::cmp::Reverse(value(e)), e.pc, e.tier));
    ranked.truncate(n);
    ranked
}

/// One-line rendering of an entry for diagnostic dumps (the watchdog
/// report): only the nonzero metrics, name=value.
pub fn render_entry(entry: &ProfileEntry) -> String {
    let mut parts = Vec::new();
    for metric in Metric::ALL {
        let v = entry.get(metric);
        if v > 0 {
            parts.push(format!("{}={v}", metric.name()));
        }
    }
    format!(
        "pc={:#010x} tier={:<5} {}",
        entry.pc,
        entry.tier.name(),
        parts.join(" ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_names_round_trip_and_are_unique() {
        let names: std::collections::HashSet<_> = Metric::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), Metric::COUNT);
        for m in Metric::ALL {
            assert_eq!(Metric::from_name(m.name()), Some(m));
            assert_eq!(
                Metric::ALL[m as usize],
                m,
                "wire order matches discriminant"
            );
        }
        assert_eq!(Metric::from_name("nope"), None);
    }

    #[test]
    fn charge_and_snapshot_round_trip() {
        let p = PcProfile::new(1);
        p.charge(0x1_0000, Tier::Block, Metric::ScFail, 1);
        p.charge(0x1_0000, Tier::Block, Metric::ScFail, 2);
        p.charge(0x1_0000, Tier::Super, Metric::Deopt, 1);
        p.charge(0x2_0004, Tier::Block, Metric::ExclWaitNs, 500);
        let snap = p.snapshot();
        assert_eq!(snap.entries.len(), 3);
        let first = &snap.entries[0];
        assert_eq!((first.pc, first.tier), (0x1_0000, Tier::Block));
        assert_eq!(first.get(Metric::ScFail), 3);
        assert_eq!(snap.entries[1].tier, Tier::Super);
        assert_eq!(snap.entries[1].get(Metric::Deopt), 1);
        assert_eq!(snap.entries[2].get(Metric::ExclWaitNs), 500);
        assert_eq!(snap.overflow.drops, 0);
    }

    #[test]
    fn same_pc_different_tier_are_distinct_rows() {
        let p = PcProfile::new(1);
        p.charge(0x40, Tier::Block, Metric::ScFail, 1);
        p.charge(0x40, Tier::Super, Metric::ScFail, 10);
        let snap = p.snapshot();
        assert_eq!(snap.entries.len(), 2);
        assert_eq!(snap.entries[0].get(Metric::ScFail), 1);
        assert_eq!(snap.entries[1].get(Metric::ScFail), 10);
    }

    #[test]
    fn zero_duration_charges_do_not_allocate_rows() {
        // Deterministic modes charge 0 ns; the row must not appear.
        let p = PcProfile::new(1);
        p.charge(0x40, Tier::Block, Metric::ExclWaitNs, 0);
        assert!(p.snapshot().entries.is_empty());
        // A zero *count* charge still lands (it marks the site), but an
        // all-zero row is dropped from the snapshot.
        p.charge(0x40, Tier::Block, Metric::ScFail, 0);
        assert!(p.snapshot().entries.is_empty());
    }

    #[test]
    fn overflow_keeps_exact_totals_and_counts_drops() {
        let p = PcProfile::new(1);
        // Saturate every slot the probe sequence can reach for enough
        // distinct PCs that some charges must overflow.
        let mut attributed = 0u64;
        for pc in 0..(PcProfile::CAPACITY as u32 + 4096) {
            p.charge(pc * 4, Tier::Block, Metric::ScFail, 1);
            attributed += 1;
        }
        let snap = p.snapshot();
        let in_table: u64 = snap.entries.iter().map(|e| e.get(Metric::ScFail)).sum();
        assert_eq!(
            in_table + snap.overflow.counts[Metric::ScFail as usize],
            attributed,
            "totals must be exact across table + overflow"
        );
        assert!(snap.overflow.drops > 0, "a 2x-capacity load must overflow");
        assert_eq!(
            snap.overflow.drops,
            snap.overflow.counts[Metric::ScFail as usize]
        );
    }

    #[test]
    fn recorder_merges_per_vcpu_tables() {
        let rec = ProfileRecorder::new();
        rec.profile(1).charge(0x100, Tier::Block, Metric::ScFail, 2);
        rec.profile(2).charge(0x100, Tier::Block, Metric::ScFail, 3);
        rec.profile(2)
            .charge(0x200, Tier::Block, Metric::MonitorClear, 1);
        let merged = rec.merged();
        assert_eq!(merged.entries.len(), 2);
        assert_eq!(merged.entries[0].get(Metric::ScFail), 5);
        assert_eq!(merged.entries[1].get(Metric::MonitorClear), 1);
        // merged == Σ per-vCPU, per metric.
        let per_vcpu = rec.snapshot_all();
        for metric in Metric::ALL {
            let merged_total: u64 = merged.entries.iter().map(|e| e.get(metric)).sum();
            let sum: u64 = per_vcpu
                .iter()
                .flat_map(|(_, s)| &s.entries)
                .map(|e| e.get(metric))
                .sum();
            assert_eq!(merged_total, sum, "{}", metric.name());
        }
    }

    #[test]
    fn recorder_reuses_tables_per_tid() {
        let rec = ProfileRecorder::new();
        let a = rec.profile(1);
        let a2 = rec.profile(1);
        assert!(Arc::ptr_eq(&a, &a2));
    }

    #[test]
    fn top_n_ranks_by_metric_and_total() {
        let p = PcProfile::new(1);
        p.charge(0x10, Tier::Block, Metric::ScFail, 5);
        p.charge(0x20, Tier::Block, Metric::ScFail, 9);
        p.charge(0x30, Tier::Block, Metric::Deopt, 100);
        let snap = p.snapshot();
        let by_fail = top_entries(&snap.entries, Some(Metric::ScFail), 8);
        assert_eq!(by_fail.len(), 2);
        assert_eq!(by_fail[0].pc, 0x20);
        let by_total = top_entries(&snap.entries, None, 2);
        assert_eq!(by_total[0].pc, 0x30);
        assert_eq!(by_total.len(), 2);
    }

    #[test]
    fn render_entry_shows_only_nonzero_metrics() {
        let mut counts = [0u64; Metric::COUNT];
        counts[Metric::ScFail as usize] = 7;
        let line = render_entry(&ProfileEntry {
            pc: 0x1_0000,
            tier: Tier::Super,
            counts,
        });
        assert!(line.contains("pc=0x00010000"), "{line}");
        assert!(line.contains("sc_fail=7"), "{line}");
        assert!(!line.contains("deopt"), "{line}");
    }
}
