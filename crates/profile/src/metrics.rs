//! The machine-readable metrics plane: `adbt_run --metrics out.jsonl`.
//!
//! One JSON object per line, schema `adbt-metrics-v1`. Threaded runs
//! emit periodic snapshots plus a final one; deterministic modes emit
//! the final snapshot only. Every line carries cache occupancy and a
//! profile summary; the final line additionally carries the full merged
//! `VcpuStats` (per-vCPU stats live in thread-owned execution contexts
//! and are not observable mid-run, so periodic lines omit them rather
//! than lie with stale numbers).
//!
//! The engine-side payloads (stats, occupancy, chaos, HTM) render
//! themselves to JSON in their home crates; this module composes the
//! line envelope and ships the validator CI runs on the emitter's own
//! output. `adbt_run --stats-json` reuses the final-line schema as a
//! single stdout object.

use crate::{Metric, ProfileSnapshot};
use adbt_trace::validate::{parse_json, Json};

/// The schema tag every line carries.
pub const SCHEMA: &str = "adbt-metrics-v1";

/// Renders the profile-summary object embedded in each line: row and
/// drop counts plus machine-wide totals per metric (zero metrics
/// omitted to keep periodic lines small).
pub fn profile_summary(snapshot: &ProfileSnapshot) -> String {
    let mut totals = [0u64; Metric::COUNT];
    for entry in &snapshot.entries {
        for (dst, src) in totals.iter_mut().zip(entry.counts) {
            *dst += src;
        }
    }
    for (dst, src) in totals.iter_mut().zip(snapshot.overflow.counts) {
        *dst += src;
    }
    let mut out = format!(
        "{{\"entries\":{},\"dropped\":{},\"totals\":{{",
        snapshot.entries.len(),
        snapshot.overflow.drops
    );
    let mut first = true;
    for metric in Metric::ALL {
        let total = totals[metric as usize];
        if total == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\"{}\":{}", metric.name(), total));
    }
    out.push_str("}}");
    out
}

/// Composes one metrics line. `extras` are `(key, pre-rendered JSON
/// value)` pairs from the engine side — occupancy, chaos, HTM, and (on
/// the final line) the merged stats block.
pub fn render_line(
    seq: u64,
    is_final: bool,
    elapsed_ns: u64,
    scheme: &str,
    profile: &str,
    extras: &[(&str, String)],
) -> String {
    let mut out = format!(
        "{{\"schema\":\"{SCHEMA}\",\"seq\":{seq},\"final\":{is_final},\
         \"elapsed_ns\":{elapsed_ns},\"scheme\":\"{scheme}\",\"profile\":{profile}"
    );
    for (key, value) in extras {
        out.push_str(&format!(",\"{key}\":{value}"));
    }
    out.push('}');
    out
}

fn check_profile(line: &Json, n: usize) -> Result<(), String> {
    let Some(profile) = line.get("profile") else {
        return Err(format!("line {n}: missing profile"));
    };
    if matches!(profile, Json::Null) {
        return Ok(()); // profiling was off for this run
    }
    for key in ["entries", "dropped"] {
        match profile.get(key).and_then(Json::as_num) {
            Some(v) if v >= 0.0 => {}
            _ => return Err(format!("line {n}: profile missing numeric {key}")),
        }
    }
    let Some(Json::Obj(totals)) = profile.get("totals") else {
        return Err(format!("line {n}: profile missing totals object"));
    };
    for (key, value) in totals {
        if Metric::from_name(key).is_none() {
            return Err(format!("line {n}: unknown metric `{key}` in totals"));
        }
        if value.as_num().filter(|v| *v >= 0.0).is_none() {
            return Err(format!("line {n}: non-numeric total `{key}`"));
        }
    }
    Ok(())
}

/// The in-tree validator: every line parses, carries the schema tag,
/// `seq` counts up from 0, exactly the last line is `final` (and
/// carries the merged stats block), occupancy is present throughout,
/// and profile summaries only name metrics this build knows.
pub fn validate_metrics_jsonl(text: &str) -> Result<usize, String> {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        return Err("no metrics lines".to_string());
    }
    for (i, raw) in lines.iter().enumerate() {
        let n = i + 1;
        let line = parse_json(raw).map_err(|e| format!("line {n}: {e}"))?;
        match line.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            other => return Err(format!("line {n}: bad schema tag {other:?}")),
        }
        match line.get("seq").and_then(Json::as_num) {
            Some(seq) if seq == i as f64 => {}
            other => return Err(format!("line {n}: seq {other:?}, want {i}")),
        }
        let is_last = i + 1 == lines.len();
        match line.get("final") {
            Some(Json::Bool(b)) if *b == is_last => {}
            _ => {
                return Err(format!(
                    "line {n}: final flag must be {is_last} (only the last line is final)"
                ))
            }
        }
        if line
            .get("elapsed_ns")
            .and_then(Json::as_num)
            .filter(|v| *v >= 0.0)
            .is_none()
        {
            return Err(format!("line {n}: missing numeric elapsed_ns"));
        }
        if line.get("scheme").and_then(Json::as_str).is_none() {
            return Err(format!("line {n}: missing scheme"));
        }
        if !matches!(line.get("occupancy"), Some(Json::Obj(_))) {
            return Err(format!("line {n}: missing occupancy object"));
        }
        check_profile(&line, n)?;
        if is_last && !matches!(line.get("stats"), Some(Json::Obj(_))) {
            return Err(format!("line {n}: final line must carry the stats block"));
        }
    }
    Ok(lines.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProfileEntry, Tier};

    fn snapshot() -> ProfileSnapshot {
        let mut entry = ProfileEntry {
            pc: 0x1_0000,
            tier: Tier::Block,
            counts: [0; Metric::COUNT],
        };
        entry.counts[Metric::ScFail as usize] = 4;
        entry.counts[Metric::MonitorClear as usize] = 2;
        let mut snap = ProfileSnapshot {
            entries: vec![entry],
            overflow: Default::default(),
        };
        snap.overflow.counts[Metric::ScFail as usize] = 1;
        snap.overflow.drops = 1;
        snap
    }

    fn line(seq: u64, is_final: bool, with_stats: bool) -> String {
        let mut extras = vec![("occupancy", "{\"blocks\":3}".to_string())];
        if with_stats {
            extras.push(("stats", "{\"insns\":100}".to_string()));
        }
        render_line(
            seq,
            is_final,
            1234,
            "hst",
            &profile_summary(&snapshot()),
            &extras,
        )
    }

    #[test]
    fn emitted_stream_validates() {
        let text = format!(
            "{}\n{}\n{}\n",
            line(0, false, false),
            line(1, false, false),
            line(2, true, true)
        );
        assert_eq!(validate_metrics_jsonl(&text).unwrap(), 3);
    }

    #[test]
    fn summary_totals_include_overflow_and_skip_zeros() {
        let summary = profile_summary(&snapshot());
        let parsed = parse_json(&summary).unwrap();
        assert_eq!(
            parsed
                .get("totals")
                .and_then(|t| t.get("sc_fail"))
                .and_then(Json::as_num),
            Some(5.0),
            "overflow bucket must count toward totals"
        );
        assert!(parsed.get("totals").unwrap().get("deopt").is_none());
        assert_eq!(parsed.get("dropped").and_then(Json::as_num), Some(1.0));
    }

    #[test]
    fn validator_rejects_broken_streams() {
        assert!(validate_metrics_jsonl("")
            .unwrap_err()
            .contains("no metrics"));
        let bad_seq = format!("{}\n{}\n", line(0, false, false), line(5, true, true));
        assert!(validate_metrics_jsonl(&bad_seq)
            .unwrap_err()
            .contains("seq"));
        let no_final = format!("{}\n", line(0, false, false));
        assert!(validate_metrics_jsonl(&no_final)
            .unwrap_err()
            .contains("final"));
        let no_stats = format!("{}\n", line(0, true, false));
        assert!(validate_metrics_jsonl(&no_stats)
            .unwrap_err()
            .contains("stats"));
        let cooked = line(0, true, true).replace("sc_fail", "sc_failz");
        assert!(validate_metrics_jsonl(&cooked)
            .unwrap_err()
            .contains("unknown metric"));
    }
}
