//! The HST family: Hash-table Store Test (paper §III-A through §III-C).
//!
//! All three variants share the LL lowering — one inline
//! [`Op::HtableSet`] claiming the hash entry plus one inline
//! [`Op::MonitorArm`] — and differ in how stores are instrumented and how
//! the SC critical section is made atomic:
//!
//! * [`Hst`]: every guest store gets an inline `HtableSet`; SC validates
//!   the entry inside a QEMU stop-the-world exclusive section. *Strong.*
//! * [`HstWeak`]: stores are not instrumented; SC serializes against
//!   competing LL/SC via a CAS'd lock bit on the hash entry itself.
//!   *Weak* — plain stores go unnoticed, but overlapping LL/SC pairs are
//!   caught (unlike PICO-CAS).
//! * [`HstHtm`]: like HST, but the SC critical section is an HTM
//!   transaction (validate entry, transactionally store), falling back to
//!   the stop-the-world path after repeated aborts. *Strong.*

use adbt_engine::{
    AtomicScheme, Atomicity, ChaosSite, ExecCtx, HelperRegistry, RetryPolicy, SchemeCostModel,
    StoreFamily, TraceKind, Trap,
};
use adbt_htm::AbortReason;
use adbt_ir::{BlockBuilder, HelperId, Op, Slot, Src};
use adbt_mmu::{Access, Width};
use std::time::Instant;

/// Emits the shared HST-family LL sequence: claim the hash entry, then
/// load and arm the monitor — all inline, no helper.
fn lower_ll_inline(b: &mut BlockBuilder, rd: Slot, addr: Src) {
    b.push(Op::HtableSet { addr });
    b.push(Op::MonitorArm { dst: rd, addr });
}

/// Checks the monitor and hash entry for an SC; common to all variants.
fn sc_precondition(ctx: &ExecCtx<'_>, addr: u32) -> bool {
    ctx.cpu.monitor.addr == Some(addr) && ctx.machine.store_test.get(addr) == ctx.cpu.tid
}

// ---------------------------------------------------------------------------
// HST
// ---------------------------------------------------------------------------

/// The paper's headline scheme (Fig. 5): strong atomicity from an inline
/// store test plus a stop-the-world SC.
#[derive(Debug, Default)]
pub struct Hst {
    sc: Option<HelperId>,
}

impl Hst {
    /// Creates the scheme.
    pub fn new() -> Hst {
        Hst::default()
    }
}

/// The body of HST's SC: runs with the world stopped.
///
/// Does **not** charge `stats.sc` itself — callers count exactly one SC
/// per guest `strex`. HST-HTM reaches here only as the degraded fallback
/// after its transactional attempts, which already counted the SC; the
/// plain HST helper counts it in [`hst_sc_exclusive`]. (Charging here
/// used to force HST-HTM to *decrement* the counter after the fallback,
/// which made `stats.sc` transiently non-monotone.)
fn hst_sc_world_stop(ctx: &mut ExecCtx<'_>, addr: u32, new: u32) -> Result<u32, Trap> {
    ctx.start_exclusive()?;
    let ok = sc_precondition(ctx, addr);
    let result = if ok {
        ctx.store(addr, Width::Word, new, false).map(|()| 0)
    } else {
        ctx.stats.sc_failures += 1;
        Ok(1)
    };
    if let Ok(status) = result {
        ctx.note_sc(addr, status == 0, new);
    }
    ctx.cpu.monitor.addr = None;
    ctx.end_exclusive();
    result
}

/// HST's SC helper: count the strex, roll chaos, stop the world.
fn hst_sc_exclusive(ctx: &mut ExecCtx<'_>, addr: u32, new: u32) -> Result<u32, Trap> {
    ctx.stats.sc += 1;
    // Injected spurious SC failure (always architecturally legal), taken
    // before paying for the stop-the-world section.
    if ctx.chaos_sc_fail() {
        ctx.cpu.monitor.addr = None;
        ctx.stats.sc_failures += 1;
        ctx.note_sc(addr, false, new);
        return Ok(1);
    }
    hst_sc_world_stop(ctx, addr, new)
}

impl AtomicScheme for Hst {
    fn name(&self) -> &'static str {
        "hst"
    }

    fn atomicity(&self) -> Atomicity {
        Atomicity::Strong
    }

    fn store_family(&self) -> StoreFamily {
        StoreFamily::Htable
    }

    fn cost_model(&self) -> SchemeCostModel {
        // Inline table mark per store; each SC runs a stop-the-world
        // exclusive section (safepoint wait + section, SimCosts ratios).
        SchemeCostModel {
            store_unit: 1,
            sc_unit: 80,
            sc_retry_unit: 80,
            contention_unit: 0,
            fault_unit: 0,
        }
    }

    fn install(&mut self, reg: &mut HelperRegistry) {
        self.sc = Some(reg.register(
            "hst_sc",
            Box::new(|ctx, args| hst_sc_exclusive(ctx, args[0], args[1])),
        ));
    }

    fn lower_ll(&self, b: &mut BlockBuilder, rd: Slot, addr: Src) {
        lower_ll_inline(b, rd, addr);
    }

    fn lower_sc(&self, b: &mut BlockBuilder, rd: Slot, value: Src, addr: Src) {
        b.push(Op::Helper {
            id: self.sc.expect("installed"),
            args: vec![addr, value],
            ret: Some(rd),
        });
    }

    fn lower_clrex(&self, b: &mut BlockBuilder) {
        b.push(Op::MonitorClear);
    }

    fn instrument_store(&self, b: &mut BlockBuilder, addr: Src) {
        // The single inline op that makes HST cheap where PICO-ST is not.
        b.push(Op::HtableSet { addr });
    }

    fn coalesce_htable_marks(&self) -> bool {
        // LL lowering is inline `HtableSet` + `MonitorArm`; dropping a
        // redundant LL-origin re-mark only risks our own SC failing
        // spuriously (legal). Store-origin marks are never touched.
        true
    }
}

// ---------------------------------------------------------------------------
// HST-WEAK
// ---------------------------------------------------------------------------

/// HST without store instrumentation (paper Fig. 7): weak atomicity at
/// PICO-CAS-like speed, with overlapping LL/SC pairs still detected via
/// the hash-entry lock.
#[derive(Debug, Default)]
pub struct HstWeak {
    ll: Option<HelperId>,
    sc: Option<HelperId>,
}

impl HstWeak {
    /// Creates the scheme.
    pub fn new() -> HstWeak {
        HstWeak::default()
    }
}

impl AtomicScheme for HstWeak {
    fn name(&self) -> &'static str {
        "hst-weak"
    }

    fn atomicity(&self) -> Atomicity {
        Atomicity::Weak
    }

    // Stores are uninstrumented — the default `StoreFamily::Plain`.

    fn cost_model(&self) -> SchemeCostModel {
        // LL and SC are each one helper call; plain stores cost nothing.
        SchemeCostModel {
            store_unit: 0,
            sc_unit: 25,
            sc_retry_unit: 25,
            contention_unit: 0,
            fault_unit: 0,
        }
    }

    fn install(&mut self, reg: &mut HelperRegistry) {
        self.ll = Some(reg.register(
            "hst_weak_ll",
            Box::new(|ctx, args| {
                let addr = args[0];
                ctx.stats.ll += 1;
                ctx.stats.htable_sets += 1;
                // Claim the entry without clobbering a locked one: a
                // plain-store claim racing into another SC's critical
                // window would let our own SC "lock" the entry while the
                // previous SC is still writing. Contended spins are timed
                // into the same lock-wait bucket PST's registry lock uses.
                let machine = ctx.machine;
                let tid = ctx.cpu.tid;
                let mut contended: Option<Instant> = None;
                machine.store_test.claim_unlocked(addr, tid, || {
                    contended.get_or_insert_with(Instant::now);
                    std::hint::spin_loop();
                });
                if let Some(since) = contended {
                    ctx.stats.lock_wait_ns += since.elapsed().as_nanos() as u64;
                }
                let value = ctx.load(addr, Width::Word)?;
                ctx.cpu.monitor.addr = Some(addr);
                ctx.cpu.monitor.value = value;
                ctx.note_ll(addr);
                Ok(value)
            }),
        ));
        self.sc = Some(reg.register(
            "hst_weak_sc",
            Box::new(|ctx, args| {
                let (addr, new) = (args[0], args[1]);
                ctx.stats.sc += 1;
                if ctx.chaos_sc_fail() {
                    ctx.cpu.monitor.addr = None;
                    ctx.stats.sc_failures += 1;
                    ctx.note_sc(addr, false, new);
                    return Ok(1);
                }
                let armed = ctx.cpu.monitor.addr == Some(addr);
                ctx.cpu.monitor.addr = None;
                // One CAS locks the entry iff it still belongs to us; a
                // competing SC either completed (entry now theirs) or
                // holds the lock — both must fail us.
                if armed && ctx.machine.store_test.try_lock(addr, ctx.cpu.tid) {
                    let result = ctx.store(addr, Width::Word, new, false);
                    ctx.machine.store_test.unlock(addr, ctx.cpu.tid);
                    ctx.note_sc(addr, result.is_ok(), new);
                    result.map(|()| 0)
                } else {
                    ctx.stats.sc_failures += 1;
                    ctx.note_sc(addr, false, new);
                    Ok(1)
                }
            }),
        ));
    }

    fn lower_ll(&self, b: &mut BlockBuilder, rd: Slot, addr: Src) {
        b.push(Op::Helper {
            id: self.ll.expect("installed"),
            args: vec![addr],
            ret: Some(rd),
        });
    }

    fn lower_sc(&self, b: &mut BlockBuilder, rd: Slot, value: Src, addr: Src) {
        b.push(Op::Helper {
            id: self.sc.expect("installed"),
            args: vec![addr, value],
            ret: Some(rd),
        });
    }

    fn lower_clrex(&self, b: &mut BlockBuilder) {
        b.push(Op::MonitorClear);
    }
}

// ---------------------------------------------------------------------------
// HST-HTM
// ---------------------------------------------------------------------------

/// HST with the SC critical section inside an HTM transaction (paper
/// §III-B, Fig. 6): the transaction covers only the entry check plus the
/// conditional store, so — unlike PICO-HTM — no emulation work can land
/// inside it.
#[derive(Debug)]
pub struct HstHtm {
    sc: Option<HelperId>,
    /// Transaction attempt budget and backoff staging before falling
    /// back to stop-the-world (the degradation ladder's bottom rung).
    retry: RetryPolicy,
}

impl HstHtm {
    /// Creates the scheme with the default retry budget (8 attempts,
    /// spinning through the first 4, yielding after, never sleeping —
    /// the SC window is far too short to justify a sleep).
    pub fn new() -> HstHtm {
        HstHtm {
            sc: None,
            retry: RetryPolicy {
                max_attempts: 8,
                yield_after: 4,
                sleep_after: u64::MAX,
                max_sleep_us: 0,
                // Degradation is driven by the attempt budget here, not
                // by the engine's storm detector.
                degrade_after: u64::MAX,
            },
        }
    }
}

impl Default for HstHtm {
    fn default() -> HstHtm {
        HstHtm::new()
    }
}

impl AtomicScheme for HstHtm {
    fn name(&self) -> &'static str {
        "hst-htm"
    }

    fn atomicity(&self) -> Atomicity {
        Atomicity::Strong
    }

    fn requires_htm(&self) -> bool {
        true
    }

    fn store_family(&self) -> StoreFamily {
        StoreFamily::Htable
    }

    fn cost_model(&self) -> SchemeCostModel {
        // Inline table mark per store; each SC is one HTM transaction,
        // and contention shows up as transaction aborts.
        SchemeCostModel {
            store_unit: 1,
            sc_unit: 40,
            sc_retry_unit: 60,
            contention_unit: 60,
            fault_unit: 0,
        }
    }

    fn install(&mut self, reg: &mut HelperRegistry) {
        let retry = self.retry;
        self.sc = Some(reg.register(
            "hst_htm_sc",
            Box::new(move |ctx, args| {
                let (addr, new) = (args[0], args[1]);
                ctx.stats.sc += 1;
                if ctx.chaos_sc_fail() {
                    ctx.cpu.monitor.addr = None;
                    ctx.stats.sc_failures += 1;
                    ctx.note_sc(addr, false, new);
                    return Ok(1);
                }
                // Fail fast outside any transaction when the precondition
                // is already gone.
                if !sc_precondition(ctx, addr) {
                    ctx.cpu.monitor.addr = None;
                    ctx.stats.sc_failures += 1;
                    ctx.note_sc(addr, false, new);
                    return Ok(1);
                }
                let paddr = match ctx
                    .machine
                    .space
                    .translate(addr, Access::Store, Width::Word)
                {
                    Ok(paddr) => paddr,
                    Err(fault) => return Err(Trap::Fault(fault)),
                };
                let entry_token = ctx.machine.store_test.htm_token(addr);
                let threaded = ctx.machine.is_threaded();
                let mut attempt = 0u64;
                // One unified retry shape: spin, then yield, then — once
                // the budget is spent — degrade to stop-the-world.
                let backoff = |ctx: &mut ExecCtx<'_>, attempt: u64, reason: AbortReason| {
                    ctx.stats.htm_aborts += 1;
                    ctx.prof_htm_abort(reason);
                    ctx.trace(
                        TraceKind::HtmAbort,
                        addr,
                        attempt.min(u32::MAX as u64) as u32,
                    );
                    if threaded {
                        ctx.stats.lock_wait_ns += retry.backoff(attempt);
                    }
                };
                while {
                    attempt += 1;
                    !retry.exhausted(attempt)
                } {
                    ctx.stats.htm_txns += 1;
                    ctx.trace(
                        TraceKind::HtmBegin,
                        addr,
                        (attempt - 1).min(u32::MAX as u64) as u32,
                    );
                    let mut txn = ctx.machine.htm.begin();
                    // Pull the hash entry's conflict token into the read
                    // set: a competing LL or instrumented store flipping
                    // the entry after our check below aborts this commit
                    // (the entry's cache line, on real HTM).
                    if let Err(reason) = txn.observe(entry_token) {
                        backoff(ctx, attempt, reason);
                        continue;
                    }
                    // Transactionally read the word so any concurrent
                    // plain store (which bumps the version) aborts us,
                    // then re-validate the hash entry inside the window.
                    if let Err(reason) = txn.load_word(ctx.machine.space.mem(), paddr) {
                        backoff(ctx, attempt, reason);
                        continue;
                    }
                    if !sc_precondition(ctx, addr) {
                        ctx.cpu.monitor.addr = None;
                        ctx.stats.sc_failures += 1;
                        ctx.note_sc(addr, false, new);
                        return Ok(1);
                    }
                    if let Err(reason) = txn.store_word(paddr, new) {
                        backoff(ctx, attempt, reason);
                        continue;
                    }
                    // Injected spurious abort at commit, the point real
                    // HTM is most likely to fail for external reasons.
                    if ctx.robust && ctx.chaos_roll(ChaosSite::HtmCommit) {
                        let reason = txn.abort();
                        backoff(ctx, attempt, reason);
                        continue;
                    }
                    match txn.commit(ctx.machine.space.mem()) {
                        Ok(()) => {
                            ctx.trace(
                                TraceKind::HtmCommit,
                                addr,
                                (attempt - 1).min(u32::MAX as u64) as u32,
                            );
                            ctx.trace_htm_streak(attempt - 1);
                            ctx.cpu.monitor.addr = None;
                            ctx.note_sc(addr, true, new);
                            return Ok(0);
                        }
                        Err(reason) => {
                            backoff(ctx, attempt, reason);
                        }
                    }
                }
                // Abort budget exhausted: degrade to the HST stop-the-world
                // path (counted — the degradation ladder's bottom rung).
                // The SC was already charged above, and the world-stop body
                // does not charge another — `stats.sc` stays one per strex
                // without ever being decremented.
                ctx.stats.degradations += 1;
                ctx.trace(
                    TraceKind::Degrade,
                    addr,
                    attempt.min(u32::MAX as u64) as u32,
                );
                ctx.trace_htm_streak(attempt);
                hst_sc_world_stop(ctx, addr, new)
            }),
        ));
    }

    fn lower_ll(&self, b: &mut BlockBuilder, rd: Slot, addr: Src) {
        lower_ll_inline(b, rd, addr);
    }

    fn lower_sc(&self, b: &mut BlockBuilder, rd: Slot, value: Src, addr: Src) {
        b.push(Op::Helper {
            id: self.sc.expect("installed"),
            args: vec![addr, value],
            ret: Some(rd),
        });
    }

    fn lower_clrex(&self, b: &mut BlockBuilder) {
        b.push(Op::MonitorClear);
    }

    fn instrument_store(&self, b: &mut BlockBuilder, addr: Src) {
        b.push(Op::HtableSet { addr });
    }

    fn coalesce_htable_marks(&self) -> bool {
        // Same inline-mark shape as plain HST; same legality argument.
        // (HST-WEAK lowers LL through a helper, so it has no inline
        // marks to coalesce and keeps the default.)
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adbt_ir::BlockExit;

    #[test]
    fn hst_ll_and_stores_are_inline() {
        let mut scheme = Hst::new();
        let mut reg = HelperRegistry::new();
        scheme.install(&mut reg);

        let mut b = BlockBuilder::new(0);
        scheme.lower_ll(&mut b, Slot::Reg(1), Src::Slot(Slot::Reg(0)));
        scheme.instrument_store(&mut b, Src::Slot(Slot::Reg(2)));
        let block = b.finish(BlockExit::Jump(0), 2);
        // LL: HtableSet + MonitorArm; store hook: HtableSet. No helpers.
        assert_eq!(block.ops.len(), 3);
        assert!(block.ops.iter().all(|op| !matches!(op, Op::Helper { .. })));
    }

    #[test]
    fn hst_sc_is_a_single_helper() {
        let mut scheme = Hst::new();
        let mut reg = HelperRegistry::new();
        scheme.install(&mut reg);
        let mut b = BlockBuilder::new(0);
        scheme.lower_sc(
            &mut b,
            Slot::Reg(2),
            Src::Slot(Slot::Reg(1)),
            Src::Slot(Slot::Reg(0)),
        );
        let block = b.finish(BlockExit::Jump(0), 1);
        assert_eq!(block.ops.len(), 1);
        assert!(matches!(block.ops[0], Op::Helper { .. }));
    }

    #[test]
    fn hst_weak_does_not_instrument_stores() {
        let scheme = HstWeak::new();
        let mut b = BlockBuilder::new(0);
        scheme.instrument_store(&mut b, Src::Slot(Slot::Reg(0)));
        assert!(b.is_empty());
    }
}
