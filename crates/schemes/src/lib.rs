//! # adbt-schemes — the paper's atomic-instruction emulation schemes
//!
//! Eight implementations of [`adbt_engine::AtomicScheme`], reproducing
//! every scheme evaluated in *Enhancing Atomic Instruction Emulation for
//! Cross-ISA Dynamic Binary Translation* (CGO 2021):
//!
//! | scheme | atomicity | needs | summary |
//! |---|---|---|---|
//! | [`PicoCas`] | incorrect | — | QEMU-4.1's value-compare CAS; fast, ABA-prone |
//! | [`PicoSt`] | strong | — | per-store locked helper checking a monitor registry |
//! | [`PicoHtm`] | strong\* | HTM | whole LL→SC region in one transaction; livelocks under load |
//! | [`Hst`] | strong | — | inline hash-table store test + stop-the-world SC |
//! | [`HstWeak`] | weak | — | HST without store instrumentation; entry-locked SC |
//! | [`HstHtm`] | strong | HTM | HST with the SC critical section as a transaction |
//! | [`Pst`] | strong | — | page-protection store test; `mprotect`-heavy SC |
//! | [`PstRemap`] | strong | — | PST with SC exclusion via page remapping |
//!
//! \* when it commits; the paper (and this reproduction) shows it fails
//! to make progress beyond ~8 threads.
//!
//! Use [`SchemeKind`] to enumerate, name and construct schemes:
//!
//! ```
//! use adbt_engine::{MachineConfig, MachineCore};
//! use adbt_schemes::SchemeKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! for kind in SchemeKind::ALL {
//!     let machine = MachineCore::new(MachineConfig::default(), kind.build())?;
//!     assert_eq!(machine.scheme.name(), kind.name());
//! }
//! # Ok(())
//! # }
//! ```

mod hst;
mod pico_cas;
mod pico_htm;
mod pico_st;
mod pst;

pub use hst::{Hst, HstHtm, HstWeak};
pub use pico_cas::PicoCas;
pub use pico_htm::PicoHtm;
pub use pico_st::PicoSt;
pub use pst::{Pst, PstRemap};

use adbt_engine::{AtomicScheme, Atomicity};

/// A scheme selector: enumeration, naming, metadata and construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// QEMU-4.1's PICO-CAS.
    PicoCas,
    /// PICO-ST (helper-based store test).
    PicoSt,
    /// PICO-HTM (LL→SC region transactions).
    PicoHtm,
    /// HST (hash-table store test), the paper's headline scheme.
    Hst,
    /// HST-WEAK (no store instrumentation).
    HstWeak,
    /// HST-HTM (transactional SC critical section).
    HstHtm,
    /// PST (page-protection store test).
    Pst,
    /// PST-REMAP (remap-based SC exclusion).
    PstRemap,
}

impl SchemeKind {
    /// All schemes, in the paper's Table II order.
    pub const ALL: [SchemeKind; 8] = [
        SchemeKind::Hst,
        SchemeKind::HstWeak,
        SchemeKind::HstHtm,
        SchemeKind::Pst,
        SchemeKind::PstRemap,
        SchemeKind::PicoSt,
        SchemeKind::PicoCas,
        SchemeKind::PicoHtm,
    ];

    /// The scheme's canonical name (matches `AtomicScheme::name`).
    pub const fn name(self) -> &'static str {
        match self {
            SchemeKind::PicoCas => "pico-cas",
            SchemeKind::PicoSt => "pico-st",
            SchemeKind::PicoHtm => "pico-htm",
            SchemeKind::Hst => "hst",
            SchemeKind::HstWeak => "hst-weak",
            SchemeKind::HstHtm => "hst-htm",
            SchemeKind::Pst => "pst",
            SchemeKind::PstRemap => "pst-remap",
        }
    }

    /// Parses a scheme name as printed by [`SchemeKind::name`]
    /// (case-insensitive, `_` accepted for `-`).
    pub fn from_name(name: &str) -> Option<SchemeKind> {
        let name = name.to_ascii_lowercase().replace('_', "-");
        SchemeKind::ALL.into_iter().find(|kind| kind.name() == name)
    }

    /// The atomicity class (paper Table II).
    pub const fn atomicity(self) -> Atomicity {
        match self {
            SchemeKind::PicoCas => Atomicity::Incorrect,
            SchemeKind::HstWeak => Atomicity::Weak,
            _ => Atomicity::Strong,
        }
    }

    /// Whether the scheme needs (here: software-emulated) HTM.
    pub const fn requires_htm(self) -> bool {
        matches!(self, SchemeKind::PicoHtm | SchemeKind::HstHtm)
    }

    /// The paper's qualitative speed label (Table II).
    pub const fn speed_label(self) -> &'static str {
        match self {
            SchemeKind::Hst | SchemeKind::HstWeak | SchemeKind::HstHtm => "fast",
            SchemeKind::Pst | SchemeKind::PicoSt => "slow",
            SchemeKind::PstRemap => "varies",
            SchemeKind::PicoCas | SchemeKind::PicoHtm => "fast",
        }
    }

    /// The paper's portability label (Table II).
    pub const fn portability_label(self) -> &'static str {
        if self.requires_htm() {
            "HTM"
        } else {
            "portable"
        }
    }

    /// Constructs a fresh scheme instance ready for
    /// [`adbt_engine::MachineCore::new`].
    pub fn build(self) -> Box<dyn AtomicScheme> {
        match self {
            SchemeKind::PicoCas => Box::new(PicoCas::new()),
            SchemeKind::PicoSt => Box::new(PicoSt::new()),
            SchemeKind::PicoHtm => Box::new(PicoHtm::new()),
            SchemeKind::Hst => Box::new(Hst::new()),
            SchemeKind::HstWeak => Box::new(HstWeak::new()),
            SchemeKind::HstHtm => Box::new(HstHtm::new()),
            SchemeKind::Pst => Box::new(Pst::new()),
            SchemeKind::PstRemap => Box::new(PstRemap::new()),
        }
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in SchemeKind::ALL {
            assert_eq!(SchemeKind::from_name(kind.name()), Some(kind));
            assert_eq!(
                SchemeKind::from_name(&kind.name().to_uppercase()),
                Some(kind)
            );
        }
        assert_eq!(SchemeKind::from_name("hst_weak"), Some(SchemeKind::HstWeak));
        assert_eq!(SchemeKind::from_name("nope"), None);
    }

    #[test]
    fn metadata_matches_built_scheme() {
        for kind in SchemeKind::ALL {
            let scheme = kind.build();
            assert_eq!(scheme.name(), kind.name());
            assert_eq!(scheme.atomicity(), kind.atomicity());
            assert_eq!(scheme.requires_htm(), kind.requires_htm());
        }
    }

    #[test]
    fn table_ii_classification() {
        assert_eq!(SchemeKind::PicoCas.atomicity(), Atomicity::Incorrect);
        assert_eq!(SchemeKind::HstWeak.atomicity(), Atomicity::Weak);
        assert_eq!(SchemeKind::Hst.atomicity(), Atomicity::Strong);
        assert!(SchemeKind::HstHtm.requires_htm());
        assert!(!SchemeKind::Pst.requires_htm());
    }
}
