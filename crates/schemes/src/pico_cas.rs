//! PICO-CAS: the scheme QEMU-4.1 actually ships (paper §II-B, Fig. 1).
//!
//! LL records the synchronization variable's address and value in the
//! vCPU state; SC issues a host `CAS` comparing the *value*. No store is
//! instrumented and no exclusion is enforced, so it is the fastest scheme
//! — and the incorrect one: if the value was changed and restored between
//! LL and SC (the ABA pattern), or if two LL/SC pairs overlap just so
//! (§IV-A Seq2–Seq4), the SC succeeds when the architecture says it must
//! fail.
//!
//! Profiler attribution flows entirely through the inline ops: the
//! engine's `Op::MonitorScCas` / `Op::MonitorClear` interpreters call
//! `note_sc` / `note_clrex`, which charge `sc_fail`, `sc_streak` and
//! `monitor_clear` to the current guest PC — so PICO-CAS needs no
//! helper-side charge sites of its own.

use adbt_engine::{AtomicScheme, Atomicity, HelperRegistry, SchemeCostModel};
use adbt_ir::{BlockBuilder, Op, Slot, Src};

/// The QEMU-4.1 baseline scheme. Entirely inline: LL lowers to
/// [`Op::MonitorArm`], SC to [`Op::MonitorScCas`] — no helpers at all,
/// mirroring QEMU's inline TCG lowering.
#[derive(Debug, Default)]
pub struct PicoCas {
    _private: (),
}

impl PicoCas {
    /// Creates the scheme.
    pub fn new() -> PicoCas {
        PicoCas::default()
    }
}

impl AtomicScheme for PicoCas {
    fn name(&self) -> &'static str {
        "pico-cas"
    }

    fn atomicity(&self) -> Atomicity {
        Atomicity::Incorrect
    }

    // Stores are uninstrumented — the default `StoreFamily::Plain`.

    fn cost_model(&self) -> SchemeCostModel {
        // Everything is inline; the SC is one CAS. The cheapest scheme
        // there is — and incorrect, which is the policy plane's problem,
        // not the cost model's.
        SchemeCostModel {
            store_unit: 0,
            sc_unit: 5,
            sc_retry_unit: 5,
            contention_unit: 0,
            fault_unit: 0,
        }
    }

    fn install(&mut self, _reg: &mut HelperRegistry) {}

    fn lower_ll(&self, b: &mut BlockBuilder, rd: Slot, addr: Src) {
        b.push(Op::MonitorArm { dst: rd, addr });
    }

    fn lower_sc(&self, b: &mut BlockBuilder, rd: Slot, value: Src, addr: Src) {
        b.push(Op::MonitorScCas {
            dst: rd,
            addr,
            new: value,
        });
    }

    fn lower_clrex(&self, b: &mut BlockBuilder) {
        b.push(Op::MonitorClear);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adbt_ir::BlockExit;

    #[test]
    fn lowering_is_fully_inline() {
        let mut scheme = PicoCas::new();
        let mut reg = HelperRegistry::new();
        scheme.install(&mut reg);

        let mut b = BlockBuilder::new(0);
        scheme.lower_ll(&mut b, Slot::Reg(1), Src::Slot(Slot::Reg(0)));
        scheme.lower_sc(
            &mut b,
            Slot::Reg(2),
            Src::Slot(Slot::Reg(1)),
            Src::Slot(Slot::Reg(0)),
        );
        scheme.lower_clrex(&mut b);
        let block = b.finish(BlockExit::Jump(0), 3);
        assert!(block.ops.iter().all(|op| !matches!(op, Op::Helper { .. })));
        assert_eq!(block.ops.len(), 3);
    }
}
