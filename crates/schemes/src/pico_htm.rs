//! PICO-HTM: the prior HTM scheme (paper §II-B and §III-B).
//!
//! The *entire* LL→SC window runs inside one hardware transaction:
//! `xbegin` at the LL, `xend` at the SC, with every guest access in
//! between transactional. Strong atomicity comes free from the HTM
//! conflict detector — but the emulator's own work (translation-cache
//! misses, helper dispatch) lands inside the transaction window and
//! aborts it, and under contention the scheme degenerates into an abort
//! storm. The paper reports frequent crashes/livelocks beyond 8 threads;
//! this reproduction surfaces the same behaviour as
//! [`adbt_engine::VcpuOutcome::Livelocked`] once the per-region retry
//! budget is exhausted.

use adbt_engine::{AtomicScheme, Atomicity, HelperRegistry, ProfileMetric, SchemeCostModel};
use adbt_ir::{BlockBuilder, HelperId, Op, Slot, Src};
use adbt_mmu::Width;

/// The PICO-HTM scheme.
#[derive(Debug, Default)]
pub struct PicoHtm {
    ll: Option<HelperId>,
    sc: Option<HelperId>,
    clrex: Option<HelperId>,
}

impl PicoHtm {
    /// Creates the scheme.
    pub fn new() -> PicoHtm {
        PicoHtm::default()
    }
}

impl AtomicScheme for PicoHtm {
    fn name(&self) -> &'static str {
        "pico-htm"
    }

    fn atomicity(&self) -> Atomicity {
        Atomicity::Strong
    }

    fn requires_htm(&self) -> bool {
        true
    }

    // Stores are uninstrumented — the default `StoreFamily::Plain`
    // (conflict detection rides the HTM domain, not the translation).

    fn cost_model(&self) -> SchemeCostModel {
        // Each LL→SC region is one cross-block transaction; contention
        // is doubly expensive because the engine's own dispatch reads
        // join the read set (the QEMU-inside-the-transaction effect), so
        // abort storms compound.
        SchemeCostModel {
            store_unit: 0,
            sc_unit: 40,
            sc_retry_unit: 60,
            contention_unit: 120,
            fault_unit: 0,
        }
    }

    fn install(&mut self, reg: &mut HelperRegistry) {
        self.ll = Some(reg.register(
            "pico_htm_ll",
            Box::new(|ctx, args| {
                let (addr, restart_pc) = (args[0], args[1]);
                ctx.stats.ll += 1;
                // A fresh LL while a region is open re-arms: abort the
                // old region first (nesting is architecturally invalid).
                // `release_region` also unwinds a degraded region's
                // exclusive section, which a bare `txn.take()` would leak.
                if ctx.region_active() {
                    ctx.release_region();
                    // The discarded reservation is a monitor clear the
                    // inline `Op::MonitorClear` path never sees — charge
                    // it here so back-to-back LLs show up in the profile.
                    ctx.prof_charge(ProfileMetric::MonitorClear, 1);
                }
                // `xbegin` with full register rollback to the LL itself
                // (or, when the abort budget is spent, the stop-the-world
                // fallback region standing in for a transaction).
                ctx.begin_region_txn(restart_pc)?;
                let value = ctx.load(addr, Width::Word)?;
                ctx.cpu.monitor.addr = Some(addr);
                ctx.cpu.monitor.value = value;
                // Inside a live transaction this buffers until commit —
                // the whole region becomes one atom to observers, exactly
                // the HTM guarantee.
                ctx.note_ll(addr);
                Ok(value)
            }),
        ));

        self.sc = Some(reg.register(
            "pico_htm_sc",
            Box::new(|ctx, args| {
                let (addr, new) = (args[0], args[1]);
                ctx.stats.sc += 1;
                let mut armed = ctx.cpu.monitor.addr == Some(addr);
                // Injected spurious SC failure; the open region (if any)
                // is released below exactly as for a genuine failure.
                if armed && ctx.chaos_sc_fail() {
                    armed = false;
                }
                ctx.cpu.monitor.addr = None;
                // `region_active` (not `txn.is_some()`): a degraded region
                // holds exclusivity instead of a transaction.
                if !armed || !ctx.region_active() {
                    ctx.release_region();
                    ctx.stats.sc_failures += 1;
                    ctx.note_sc(addr, false, new);
                    return Ok(1);
                }
                // The store joins the transaction (or happens directly,
                // world-stopped, in a degraded region), then `xend`.
                ctx.store(addr, Width::Word, new, true)?;
                ctx.commit_region_txn()?;
                // The region just committed (txn gone), so this lands
                // unbuffered right after the region's flushed events.
                ctx.note_sc(addr, true, new);
                Ok(0)
            }),
        ));

        self.clrex = Some(reg.register(
            "pico_htm_clrex",
            Box::new(|ctx, _args| {
                ctx.release_region();
                ctx.cpu.monitor.addr = None;
                ctx.note_clrex();
                Ok(0)
            }),
        ));
    }

    fn lower_ll(&self, b: &mut BlockBuilder, rd: Slot, addr: Src) {
        // The restart PC is the LL instruction itself: RTM rolls the
        // whole region back there on abort.
        let restart = Src::Imm(b.current_pc());
        b.push(Op::Helper {
            id: self.ll.expect("installed"),
            args: vec![addr, restart],
            ret: Some(rd),
        });
    }

    fn lower_sc(&self, b: &mut BlockBuilder, rd: Slot, value: Src, addr: Src) {
        b.push(Op::Helper {
            id: self.sc.expect("installed"),
            args: vec![addr, value],
            ret: Some(rd),
        });
    }

    fn lower_clrex(&self, b: &mut BlockBuilder) {
        b.push(Op::Helper {
            id: self.clrex.expect("installed"),
            args: vec![],
            ret: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowering_embeds_restart_pc() {
        let mut scheme = PicoHtm::new();
        let mut reg = HelperRegistry::new();
        scheme.install(&mut reg);
        let mut b = BlockBuilder::new(0x1000);
        b.set_current_pc(0x1008);
        scheme.lower_ll(&mut b, Slot::Reg(1), Src::Slot(Slot::Reg(0)));
        let block = b.finish(adbt_ir::BlockExit::Jump(0), 1);
        match &block.ops[0] {
            Op::Helper { args, .. } => assert_eq!(args[1], Src::Imm(0x1008)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
