//! PICO-ST: the prior software store-test scheme (paper §II-B).
//!
//! A registry maps each thread to its active LL/SC monitor. *Every*
//! guest store is preceded by a helper that takes a global lock and
//! clears any other thread's monitor overlapping the store's footprint —
//! which is why PICO-ST cannot use a cheap inline sequence and why the
//! paper measures 20–45% overhead from store instrumentation alone. LL
//! and SC take the same lock.
//!
//! This implementation reproduces the scheme's subtle pitfall: the
//! monitor-clearing *check* and the store itself are separate steps —
//! the registry lock is released when the helper returns, and only then
//! does the store execute. A thread descheduled in that gap lets a
//! competitor LL the just-cleared word and SC it successfully even
//! though the pending store lands in between: an overlapping-LL/SC miss.
//! The gap is marked with [`Op::Window`], so deterministic scheduled
//! runs (`adbt-check`) can deschedule exactly there and enumerate the
//! window's interleavings; every other execution mode treats the marker
//! as a no-op and interleaves at block boundaries, where the
//! helper+store pair is never split.

use adbt_engine::{
    AtomicScheme, Atomicity, ChaosSite, ExecCtx, HelperRegistry, ProfileMetric, SchemeCostModel,
    StoreFamily,
};
use adbt_ir::{BlockBuilder, HelperId, Op, Slot, Src};
use adbt_mmu::Width;
use adbt_sync::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// The shared monitor registry: tid → monitored address.
#[derive(Debug, Default)]
struct Registry {
    monitors: HashMap<u32, u32>,
}

/// Acquires the global lock, timing only contended acquisitions into
/// the lock-wait bucket.
/// Acquires the registry lock. `global` marks LL/SC-path acquisitions,
/// which the simulator queues on the shared-resource clock; the
/// store-path check-and-update is modelled as a fine-grained lock (its
/// cost is the helper dispatch itself), matching the paper's account
/// that PICO-ST's overhead is instrumentation, not lock saturation.
fn lock_registry<'a>(
    shared: &'a Mutex<Registry>,
    ctx: &mut ExecCtx<'_>,
    global: bool,
) -> MutexGuard<'a, Registry> {
    if global {
        ctx.stats.lock_acquisitions += 1;
    }
    // Injected lock-acquire stall: models a descheduled lock holder.
    if ctx.robust && ctx.chaos_roll(ChaosSite::LockStall) {
        let stall = ctx.chaos_stall();
        ctx.stats.lock_wait_ns += stall;
        ctx.prof_charge(ProfileMetric::ExclWaitNs, stall);
    }
    if let Some(guard) = shared.try_lock() {
        return guard;
    }
    let start = Instant::now();
    let guard = shared.lock();
    let waited = start.elapsed().as_nanos() as u64;
    ctx.stats.lock_wait_ns += waited;
    // PICO-ST's global registry lock plays the role the exclusive
    // barrier plays elsewhere, so contended waits land in the same
    // profile bucket and the hot guest PCs show up under `excl_wait_ns`.
    ctx.prof_charge(ProfileMetric::ExclWaitNs, waited);
    guard
}

fn decode_width(code: u32) -> Width {
    match code {
        0 => Width::Byte,
        1 => Width::Half,
        _ => Width::Word,
    }
}

fn width_code(width: Width) -> u32 {
    match width {
        Width::Byte => 0,
        Width::Half => 1,
        Width::Word => 2,
    }
}

/// Whether a store of `width` bytes at `addr` touches the monitored word
/// at `monitored`.
fn overlaps(monitored: u32, addr: u32, width: Width) -> bool {
    let m_end = monitored.wrapping_add(4);
    let s_end = addr.wrapping_add(width.bytes());
    addr < m_end && monitored < s_end
}

/// The PICO-ST scheme.
#[derive(Debug, Default)]
pub struct PicoSt {
    shared: Arc<Mutex<Registry>>,
    ll: Option<HelperId>,
    sc: Option<HelperId>,
    store: Option<HelperId>,
    clrex: Option<HelperId>,
}

impl PicoSt {
    /// Creates the scheme.
    pub fn new() -> PicoSt {
        PicoSt::default()
    }
}

impl AtomicScheme for PicoSt {
    fn name(&self) -> &'static str {
        "pico-st"
    }

    fn atomicity(&self) -> Atomicity {
        Atomicity::Strong
    }

    fn store_family(&self) -> StoreFamily {
        StoreFamily::Locked
    }

    fn cost_model(&self) -> SchemeCostModel {
        // *Every* plain store routes through the locked helper — the
        // paper's headline PICO-ST cost — and contention queues on the
        // one global lock.
        SchemeCostModel {
            store_unit: 40,
            sc_unit: 40,
            sc_retry_unit: 40,
            contention_unit: 30,
            fault_unit: 0,
        }
    }

    fn install(&mut self, reg: &mut HelperRegistry) {
        let shared = Arc::clone(&self.shared);
        self.ll = Some(reg.register(
            "pico_st_ll",
            Box::new(move |ctx, args| {
                let addr = args[0];
                ctx.stats.ll += 1;
                let mut guard = lock_registry(&shared, ctx, true);
                guard.monitors.insert(ctx.cpu.tid, addr);
                // Load while holding the lock so registration and read
                // are one atomic step with respect to competing stores.
                let value = ctx.load(addr, Width::Word)?;
                drop(guard);
                ctx.cpu.monitor.addr = Some(addr);
                ctx.cpu.monitor.value = value;
                ctx.note_ll(addr);
                Ok(value)
            }),
        ));

        let shared = Arc::clone(&self.shared);
        self.sc = Some(reg.register(
            "pico_st_sc",
            Box::new(move |ctx, args| {
                let (addr, new) = (args[0], args[1]);
                ctx.stats.sc += 1;
                let mut guard = lock_registry(&shared, ctx, true);
                let mut ok = guard.monitors.get(&ctx.cpu.tid) == Some(&addr);
                // Injected spurious SC failure (architecturally legal on
                // ARM); the registry entry is dropped below either way,
                // exactly as for a genuine failure.
                if ok && ctx.chaos_sc_fail() {
                    ok = false;
                }
                let result = if ok {
                    // The SC's store breaks every monitor on the stored
                    // word — competing threads' included (Seq2–Seq4) —
                    // not just the executing thread's.
                    guard
                        .monitors
                        .retain(|_, &mut monitored| !overlaps(monitored, addr, Width::Word));
                    ctx.store(addr, Width::Word, new, false).map(|()| 0)
                } else {
                    // A failed SC still clears the monitor: drop the
                    // registry entry so a retry without a fresh LL
                    // cannot spuriously succeed.
                    guard.monitors.remove(&ctx.cpu.tid);
                    ctx.stats.sc_failures += 1;
                    Ok(1)
                };
                drop(guard);
                ctx.cpu.monitor.addr = None;
                if let Ok(status) = result {
                    ctx.note_sc(addr, status == 0, new);
                }
                result
            }),
        ));

        let shared = Arc::clone(&self.shared);
        self.store = Some(reg.register(
            "pico_st_store_test",
            Box::new(move |ctx, args| {
                let (addr, width) = (args[0], decode_width(args[1]));
                let mut guard = lock_registry(&shared, ctx, false);
                let tid = ctx.cpu.tid;
                // Clear every *other* thread's monitor this store hits
                // (the architecture keeps a thread's own monitor intact
                // across its own stores). The store itself follows as a
                // separate op after this helper returns — see the module
                // doc for the window that opens here. The raw guest store
                // op counts `stats.stores`; this helper must not.
                guard.monitors.retain(|&owner, &mut monitored| {
                    owner == tid || !overlaps(monitored, addr, width)
                });
                drop(guard);
                Ok(0)
            }),
        ));

        let shared = Arc::clone(&self.shared);
        self.clrex = Some(reg.register(
            "pico_st_clrex",
            Box::new(move |ctx, _args| {
                let mut guard = lock_registry(&shared, ctx, true);
                guard.monitors.remove(&ctx.cpu.tid);
                Ok(0)
            }),
        ));
    }

    fn lower_ll(&self, b: &mut BlockBuilder, rd: Slot, addr: Src) {
        b.push(Op::Helper {
            id: self.ll.expect("installed"),
            args: vec![addr],
            ret: Some(rd),
        });
    }

    fn lower_sc(&self, b: &mut BlockBuilder, rd: Slot, value: Src, addr: Src) {
        b.push(Op::Helper {
            id: self.sc.expect("installed"),
            args: vec![addr, value],
            ret: Some(rd),
        });
    }

    fn lower_clrex(&self, b: &mut BlockBuilder) {
        // The SC helper consults the *registry*, so clrex must drop the
        // registry entry, not just the local monitor record.
        b.push(Op::MonitorClear);
        b.push(Op::Helper {
            id: self.clrex.expect("installed"),
            args: vec![],
            ret: None,
        });
    }

    /// PICO-ST precedes every store with its locked check helper; the
    /// store itself stays a plain op, leaving the non-atomic gap the
    /// module doc describes ([`Op::Window`] marks it for scheduled runs).
    fn lower_store(&self, b: &mut BlockBuilder, src: Src, addr: Src, width: Width) {
        b.push(Op::Helper {
            id: self.store.expect("installed"),
            args: vec![addr, Src::Imm(width_code(width))],
            ret: None,
        });
        b.push(Op::Window);
        b.push(Op::Store {
            src,
            addr,
            width,
            guest_store: true,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_detection() {
        // Monitored word [0x100, 0x104).
        assert!(overlaps(0x100, 0x100, Width::Word));
        assert!(overlaps(0x100, 0x103, Width::Byte));
        assert!(overlaps(0x100, 0xfe, Width::Word));
        assert!(!overlaps(0x100, 0x104, Width::Word));
        assert!(!overlaps(0x100, 0xfe, Width::Half));
        assert!(overlaps(0x100, 0xff, Width::Half));
    }

    #[test]
    fn width_codes_round_trip() {
        for width in [Width::Byte, Width::Half, Width::Word] {
            assert_eq!(decode_width(width_code(width)), width);
        }
    }
}
