//! PST and PST-REMAP: the page-protection store-test schemes (paper
//! §III-D and §III-E).
//!
//! **PST** write-protects the page of the synchronization variable when
//! an LL arms a monitor. Competing plain stores then fault; the handler
//! distinguishes a *true* conflict (the store overlaps a monitored word —
//! break those monitors, so their SCs fail) from *false sharing* (same
//! page, different address — complete the store via the privileged path
//! and keep the monitors). The SC itself briefly restores write
//! permission under a stop-the-world section — the `mprotect` +
//! suspend-everyone cost that dominates PST's profile (Fig. 12).
//!
//! **PST-REMAP** keeps PST's LL but replaces the SC's stop-the-world
//! permission dance with `mremap`: the page moves to a per-thread alias
//! with write permission, the original becomes unmapped (accesses fault
//! `MAPERR` and wait), the SC writes through the alias, and the page
//! moves back. No thread suspension — at the price of two remaps per SC.
//!
//! Both schemes are strongly atomic. The soft-MMU's permission words are
//! immediately visible to all threads, standing in for the kernel's page
//! tables + TLB shootdown (see DESIGN.md for the substitution argument).

use adbt_engine::{
    AtomicScheme, Atomicity, ChaosSite, ExecCtx, FaultAccess, FaultOutcome, HelperRegistry,
    ProfileMetric, SchemeCostModel, StoreFamily, TraceKind, Trap,
};
use adbt_ir::{BlockBuilder, HelperId, Op, Slot, Src};
use adbt_mmu::{FaultKind, PageFault, Perms, Width, PAGE_SHIFT, PAGE_SIZE};
use adbt_sync::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// One armed monitor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct MonitorEntry {
    tid: u32,
    addr: u32,
}

/// Page → monitors armed on it. A page is write-protected exactly while
/// it has at least one entry here.
#[derive(Debug, Default)]
struct PstRegistry {
    pages: HashMap<u32, Vec<MonitorEntry>>,
}

/// State shared between a PST-family scheme's helpers and fault handler.
#[derive(Debug, Default)]
struct PstShared {
    registry: Mutex<PstRegistry>,
}

/// Acquires the registry without ever blocking across a safepoint:
/// a holder of this lock may initiate a stop-the-world section, so
/// waiters must keep servicing safepoints or the machine deadlocks.
fn lock_registry<'a>(shared: &'a PstShared, ctx: &mut ExecCtx<'_>) -> MutexGuard<'a, PstRegistry> {
    ctx.stats.lock_acquisitions += 1;
    if ctx.robust && ctx.chaos_roll(ChaosSite::LockStall) {
        // Injected stall on the way to the registry lock (holder
        // descheduled mid-acquire); widens the contention windows the
        // fault handler and SC race through.
        ctx.stats.lock_wait_ns += ctx.chaos_stall();
    }
    if let Some(guard) = shared.registry.try_lock() {
        return guard;
    }
    let start = Instant::now();
    loop {
        ctx.stats.exclusive_ns += ctx.machine.exclusive.safepoint();
        if let Some(guard) = shared.registry.try_lock() {
            ctx.stats.lock_wait_ns += start.elapsed().as_nanos() as u64;
            return guard;
        }
        std::thread::yield_now();
    }
}

/// Changes a page's permissions under a stop-the-world section, charging
/// the whole operation to the `mprotect` profile bucket — the paper's
/// cost model for an emulator-side `mprotect` (kernel entry + suspending
/// other threads).
///
/// Fails only when the machine halts while this thread awaits
/// exclusivity; the permission change is skipped and the caller unwinds.
fn timed_protect(ctx: &mut ExecCtx<'_>, page: u32, perms: Perms) -> Result<(), Trap> {
    let start = Instant::now();
    ctx.stats.mprotect_calls += 1;
    // Payload 1 = page opened for writes, 0 = write-protected.
    ctx.trace(
        TraceKind::Mprotect,
        page << PAGE_SHIFT,
        perms.allows_write() as u32,
    );
    // This really is a stop-the-world section (counted as such so both
    // the wall-clock and virtual-time accounting see it); its *duration*
    // is attributed to the mprotect bucket per the paper's Fig. 12.
    ctx.start_exclusive()?;
    if ctx.robust && ctx.chaos_roll(ChaosSite::MprotectDelay) {
        // Injected mprotect latency spike, taken with the world stopped —
        // the worst possible moment. The stall lands in `mprotect_ns`
        // through the surrounding timer.
        let _ = ctx.chaos_stall();
    }
    ctx.machine.space.protect(page, perms);
    ctx.end_exclusive();
    ctx.stats.mprotect_ns += start.elapsed().as_nanos() as u64;
    Ok(())
}

/// Migration-off cleanup shared by both PST variants: drop every armed
/// monitor and reopen the pages they held write-protected. Runs inside
/// the migration's stop-the-world window, where every other vCPU is
/// parked at a block edge — a point the registry is never held across —
/// so the try-lock only ever fails if the machine is tearing down.
fn pst_deactivate(shared: &PstShared, ctx: &mut ExecCtx<'_>) {
    let Some(mut reg) = shared.registry.try_lock() else {
        return;
    };
    let mut pages: Vec<u32> = reg.pages.drain().map(|(page, _)| page).collect();
    pages.sort_unstable();
    for page in pages {
        // Direct protect, not `timed_protect`: the caller already holds
        // the exclusive window.
        ctx.machine.space.protect(page, Perms::RWX);
        ctx.stats.mprotect_calls += 1;
        ctx.trace(TraceKind::Mprotect, page << PAGE_SHIFT, 1);
    }
}

/// Whether a store of `width` bytes at `addr` touches the monitored word.
fn overlaps(monitored: u32, addr: u32, width: Width) -> bool {
    addr < monitored.wrapping_add(4) && monitored < addr.wrapping_add(width.bytes())
}

/// Drops every registry entry of the calling thread, unprotecting pages
/// it was the last monitor on. Registry must be held.
///
/// Scans by tid rather than by the local monitor address: the local
/// monitor can be cleared independently of the registry (a failed SC, a
/// spurious/injected monitor clear), and an address-keyed removal would
/// then leak the stale entry — keeping the page write-protected and the
/// one-monitor-per-thread invariant broken forever.
fn drop_own_monitor_locked(ctx: &mut ExecCtx<'_>, reg: &mut PstRegistry) -> Result<(), Trap> {
    let tid = ctx.cpu.tid;
    let mut emptied: Vec<u32> = Vec::new();
    reg.pages.retain(|&page, list| {
        let before = list.len();
        list.retain(|m| m.tid != tid);
        if list.is_empty() && before > 0 {
            emptied.push(page);
            false
        } else {
            true
        }
    });
    for page in emptied {
        timed_protect(ctx, page, Perms::RWX)?;
    }
    Ok(())
}

/// The common LL emulation (paper Fig. 8, upper half): register the
/// monitor, write-protect the page on first use, load the value.
fn pst_ll(shared: &PstShared, ctx: &mut ExecCtx<'_>, addr: u32) -> Result<u32, Trap> {
    ctx.stats.ll += 1;
    let mut guard = lock_registry(shared, ctx);
    let reg = &mut *guard;
    drop_own_monitor_locked(ctx, reg)?;

    let page = addr >> PAGE_SHIFT;
    let list = reg.pages.entry(page).or_default();
    let first_on_page = list.is_empty();
    list.push(MonitorEntry {
        tid: ctx.cpu.tid,
        addr,
    });
    if first_on_page {
        timed_protect(ctx, page, Perms::READ | Perms::EXEC)?;
    }
    // Read through the privileged path: the page is mapped (we hold the
    // registry, so no remap is in flight) but now read-only, and going
    // through `ctx.load` could recurse into our own fault handler.
    let paddr = ctx
        .machine
        .space
        .translate_bypass(addr, Width::Word)
        .map_err(Trap::Fault)?;
    let value = ctx.machine.space.mem().load(paddr, Width::Word);
    ctx.cpu.monitor.addr = Some(addr);
    ctx.cpu.monitor.value = value;
    ctx.note_ll(addr);
    Ok(value)
}

/// Checks the SC precondition: local monitor armed on `addr` *and* the
/// registry still holds our entry (a conflicting store removes it).
fn sc_registered(ctx: &ExecCtx<'_>, reg: &PstRegistry, addr: u32) -> bool {
    ctx.cpu.monitor.addr == Some(addr)
        && reg
            .pages
            .get(&(addr >> PAGE_SHIFT))
            .is_some_and(|list| list.iter().any(|m| m.tid == ctx.cpu.tid && m.addr == addr))
}

/// The common store-fault handler (`SEGV_ACCERR` path): break overlapped
/// monitors of other threads, or complete a false-sharing store.
fn handle_protected_store(
    shared: &PstShared,
    ctx: &mut ExecCtx<'_>,
    fault: PageFault,
    value: u32,
    width: Width,
) -> FaultOutcome {
    let page = fault.vaddr >> PAGE_SHIFT;
    let mut guard = lock_registry(shared, ctx);
    let reg = &mut *guard;
    let Some(list) = reg.pages.get_mut(&page) else {
        // The page was unprotected between the fault and the lock; the
        // plain store path will succeed now.
        return FaultOutcome::Retry;
    };
    let tid = ctx.cpu.tid;
    let before = list.len();
    // Break every *other* thread's monitor this store overlaps; the
    // architecture keeps a thread's own monitor across its own stores.
    list.retain(|m| m.tid == tid || !overlaps(m.addr, fault.vaddr, width));
    let broke_any = list.len() != before;
    if !broke_any {
        ctx.stats.false_sharing_faults += 1;
        ctx.prof_charge(ProfileMetric::FalseSharing, 1);
        ctx.trace(TraceKind::FalseSharing, fault.vaddr, 0);
    }
    if list.is_empty() {
        reg.pages.remove(&page);
        // On halt the unprotect is skipped: the retried store faults
        // again and the fault entry path turns it into a clean livelock
        // outcome, so Retry is right either way.
        let _ = timed_protect(ctx, page, Perms::RWX);
        return FaultOutcome::Retry;
    }
    // Monitors remain (false sharing, or our own survived): complete the
    // store through the privileged path.
    match ctx.machine.space.translate_bypass(fault.vaddr, width) {
        Ok(paddr) => {
            ctx.machine.space.mem().store(paddr, width, value);
            FaultOutcome::Done
        }
        Err(_) => FaultOutcome::Fatal,
    }
}

fn lower_helper2(b: &mut BlockBuilder, id: HelperId, a0: Src, a1: Src, ret: Slot) {
    b.push(Op::Helper {
        id,
        args: vec![a0, a1],
        ret: Some(ret),
    });
}

// ---------------------------------------------------------------------------
// PST
// ---------------------------------------------------------------------------

/// The Page-protection Store Test scheme.
#[derive(Debug, Default)]
pub struct Pst {
    shared: Arc<PstShared>,
    ll: Option<HelperId>,
    sc: Option<HelperId>,
    clrex: Option<HelperId>,
}

impl Pst {
    /// Creates the scheme.
    pub fn new() -> Pst {
        Pst::default()
    }
}

impl AtomicScheme for Pst {
    fn name(&self) -> &'static str {
        "pst"
    }

    fn atomicity(&self) -> Atomicity {
        Atomicity::Strong
    }

    fn uses_page_protection(&self) -> bool {
        true
    }

    fn store_family(&self) -> StoreFamily {
        StoreFamily::Page
    }

    fn cost_model(&self) -> SchemeCostModel {
        // Plain stores are free; each SC is an mprotect round trip under
        // a stop-the-world section, and every protection fault a
        // competitor takes costs another one.
        SchemeCostModel {
            store_unit: 0,
            sc_unit: 3100,
            sc_retry_unit: 100,
            contention_unit: 0,
            fault_unit: 3000,
        }
    }

    fn on_deactivate(&self, ctx: &mut ExecCtx<'_>) {
        pst_deactivate(&self.shared, ctx);
    }

    fn install(&mut self, reg: &mut HelperRegistry) {
        let shared = Arc::clone(&self.shared);
        self.ll = Some(reg.register(
            "pst_ll",
            Box::new(move |ctx, args| pst_ll(&shared, ctx, args[0])),
        ));

        let shared = Arc::clone(&self.shared);
        self.sc = Some(reg.register(
            "pst_sc",
            Box::new(move |ctx, args| {
                let (addr, new) = (args[0], args[1]);
                ctx.stats.sc += 1;
                let mut guard = lock_registry(&shared, ctx);
                let registry = &mut *guard;
                let mut ok = sc_registered(ctx, registry, addr);
                // Injected spurious SC failure; the registry entry stays,
                // exactly as after a genuine failure, and the next LL's
                // tid-scan cleanup reclaims it.
                if ok && ctx.chaos_sc_fail() {
                    ok = false;
                }
                if ok {
                    let page = addr >> PAGE_SHIFT;
                    // The paper's SC sequence: suspend everyone, reopen
                    // write permission, store, re-protect, resume.
                    let start = Instant::now();
                    ctx.start_exclusive()?;
                    ctx.machine.space.protect(page, Perms::RWX);
                    ctx.stats.mprotect_calls += 1;
                    ctx.trace(TraceKind::Mprotect, page << PAGE_SHIFT, 1);
                    let paddr = ctx
                        .machine
                        .space
                        .translate_bypass(addr, Width::Word)
                        .expect("monitored page is mapped");
                    ctx.machine.space.mem().store(paddr, Width::Word, new);
                    // An SC's store is still a store: it breaks *every*
                    // monitor on the stored word (including competing
                    // threads' — the Seq2/Seq3/Seq4 cases), not just ours.
                    let list = registry.pages.get_mut(&page).expect("checked above");
                    list.retain(|m| !overlaps(m.addr, addr, Width::Word));
                    if list.is_empty() {
                        registry.pages.remove(&page);
                    } else {
                        ctx.machine.space.protect(page, Perms::READ | Perms::EXEC);
                        ctx.stats.mprotect_calls += 1;
                        ctx.trace(TraceKind::Mprotect, page << PAGE_SHIFT, 0);
                    }
                    ctx.end_exclusive();
                    ctx.stats.mprotect_ns += start.elapsed().as_nanos() as u64;
                } else {
                    ctx.stats.sc_failures += 1;
                }
                drop(guard);
                ctx.cpu.monitor.addr = None;
                ctx.note_sc(addr, ok, new);
                Ok(!ok as u32)
            }),
        ));

        let shared = Arc::clone(&self.shared);
        self.clrex = Some(reg.register(
            "pst_clrex",
            Box::new(move |ctx, _args| {
                let mut guard = lock_registry(&shared, ctx);
                drop_own_monitor_locked(ctx, &mut guard)?;
                drop(guard);
                ctx.cpu.monitor.addr = None;
                ctx.note_clrex();
                Ok(0)
            }),
        ));
    }

    fn lower_ll(&self, b: &mut BlockBuilder, rd: Slot, addr: Src) {
        b.push(Op::Helper {
            id: self.ll.expect("installed"),
            args: vec![addr],
            ret: Some(rd),
        });
    }

    fn lower_sc(&self, b: &mut BlockBuilder, rd: Slot, value: Src, addr: Src) {
        lower_helper2(b, self.sc.expect("installed"), addr, value, rd);
    }

    fn lower_clrex(&self, b: &mut BlockBuilder) {
        b.push(Op::Helper {
            id: self.clrex.expect("installed"),
            args: vec![],
            ret: None,
        });
    }

    fn on_page_fault(
        &self,
        ctx: &mut ExecCtx<'_>,
        fault: PageFault,
        access: FaultAccess,
    ) -> FaultOutcome {
        match (fault.kind, access) {
            (FaultKind::Protected, FaultAccess::Store { value, width }) => {
                handle_protected_store(&self.shared, ctx, fault, value, width)
            }
            // PST never unmaps pages and keeps read+exec; anything else
            // is a guest bug.
            _ => FaultOutcome::Fatal,
        }
    }
}

// ---------------------------------------------------------------------------
// PST-REMAP
// ---------------------------------------------------------------------------

/// The remap-optimized PST variant.
#[derive(Debug, Default)]
pub struct PstRemap {
    shared: Arc<PstShared>,
    ll: Option<HelperId>,
    sc: Option<HelperId>,
    clrex: Option<HelperId>,
}

impl PstRemap {
    /// Creates the scheme.
    pub fn new() -> PstRemap {
        PstRemap::default()
    }
}

impl AtomicScheme for PstRemap {
    fn name(&self) -> &'static str {
        "pst-remap"
    }

    fn atomicity(&self) -> Atomicity {
        Atomicity::Strong
    }

    fn uses_page_protection(&self) -> bool {
        true
    }

    fn store_family(&self) -> StoreFamily {
        StoreFamily::Page
    }

    fn cost_model(&self) -> SchemeCostModel {
        // Like PST, but the SC's page trip is the cheaper remap pair
        // rather than two mprotect round trips.
        SchemeCostModel {
            store_unit: 0,
            sc_unit: 1600,
            sc_retry_unit: 100,
            contention_unit: 0,
            fault_unit: 1500,
        }
    }

    fn on_deactivate(&self, ctx: &mut ExecCtx<'_>) {
        pst_deactivate(&self.shared, ctx);
    }

    fn install(&mut self, reg: &mut HelperRegistry) {
        let shared = Arc::clone(&self.shared);
        self.ll = Some(reg.register(
            "pst_remap_ll",
            Box::new(move |ctx, args| pst_ll(&shared, ctx, args[0])),
        ));

        let shared = Arc::clone(&self.shared);
        self.sc = Some(reg.register(
            "pst_remap_sc",
            Box::new(move |ctx, args| {
                let (addr, new) = (args[0], args[1]);
                ctx.stats.sc += 1;
                let mut guard = lock_registry(&shared, ctx);
                let registry = &mut *guard;
                let mut ok = sc_registered(ctx, registry, addr);
                if ok && ctx.chaos_sc_fail() {
                    ok = false;
                }
                if ok {
                    let page = addr >> PAGE_SHIFT;
                    // Per-thread alias slot in the high window, so two
                    // SCs on different pages can remap concurrently...
                    // except the registry lock serializes them anyway;
                    // the per-tid slot keeps the address arithmetic
                    // collision-free.
                    let alias_page = ctx.machine.space.high_window_base() + (ctx.cpu.tid - 1);
                    let start = Instant::now();
                    ctx.stats.remap_calls += 2;
                    // One event per remap pair: away to the alias + back.
                    ctx.trace(TraceKind::Remap, page << PAGE_SHIFT, alias_page);
                    ctx.machine
                        .space
                        .move_page(page, alias_page, Perms::READ | Perms::WRITE)
                        .expect("monitored page is mapped");
                    // The original page is now unmapped: concurrent
                    // accesses fault MAPERR and wait in the handler.
                    if ctx.robust && ctx.chaos_roll(ChaosSite::MprotectDelay) {
                        // Injected remap latency while the page is away —
                        // stretches the MAPERR window other threads wait in.
                        let _ = ctx.chaos_stall();
                    }
                    let alias_addr = (alias_page << PAGE_SHIFT) | (addr & (PAGE_SIZE - 1));
                    ctx.machine
                        .space
                        .store(alias_addr, Width::Word, new)
                        .expect("alias is writable");
                    // As in PST: the SC's store breaks every monitor on
                    // the stored word, competitors' included.
                    let list = registry.pages.get_mut(&page).expect("checked above");
                    list.retain(|m| !overlaps(m.addr, addr, Width::Word));
                    let perms = if list.is_empty() {
                        registry.pages.remove(&page);
                        Perms::RWX
                    } else {
                        Perms::READ | Perms::EXEC
                    };
                    ctx.machine
                        .space
                        .move_page(alias_page, page, perms)
                        .expect("alias was just mapped");
                    ctx.stats.mprotect_ns += start.elapsed().as_nanos() as u64;
                } else {
                    ctx.stats.sc_failures += 1;
                }
                drop(guard);
                ctx.cpu.monitor.addr = None;
                ctx.note_sc(addr, ok, new);
                Ok(!ok as u32)
            }),
        ));

        let shared = Arc::clone(&self.shared);
        self.clrex = Some(reg.register(
            "pst_remap_clrex",
            Box::new(move |ctx, _args| {
                let mut guard = lock_registry(&shared, ctx);
                drop_own_monitor_locked(ctx, &mut guard)?;
                drop(guard);
                ctx.cpu.monitor.addr = None;
                ctx.note_clrex();
                Ok(0)
            }),
        ));
    }

    fn lower_ll(&self, b: &mut BlockBuilder, rd: Slot, addr: Src) {
        b.push(Op::Helper {
            id: self.ll.expect("installed"),
            args: vec![addr],
            ret: Some(rd),
        });
    }

    fn lower_sc(&self, b: &mut BlockBuilder, rd: Slot, value: Src, addr: Src) {
        lower_helper2(b, self.sc.expect("installed"), addr, value, rd);
    }

    fn lower_clrex(&self, b: &mut BlockBuilder) {
        b.push(Op::Helper {
            id: self.clrex.expect("installed"),
            args: vec![],
            ret: None,
        });
    }

    fn on_page_fault(
        &self,
        ctx: &mut ExecCtx<'_>,
        fault: PageFault,
        access: FaultAccess,
    ) -> FaultOutcome {
        match (fault.kind, access) {
            (FaultKind::Protected, FaultAccess::Store { value, width }) => {
                handle_protected_store(&self.shared, ctx, fault, value, width)
            }
            // MAPERR: the page is (most likely) remapped away by an SC in
            // flight. Taking the registry lock waits for that SC; if the
            // page is mapped again afterwards, retry the access.
            (FaultKind::Unmapped, _) => {
                let guard = lock_registry(&self.shared, ctx);
                let mapped = ctx.machine.space.perms(fault.vaddr >> PAGE_SHIFT).is_some();
                drop(guard);
                if mapped {
                    FaultOutcome::Retry
                } else {
                    // No SC in flight and still unmapped: a wild access.
                    FaultOutcome::Fatal
                }
            }
            _ => FaultOutcome::Fatal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_matches_word_footprint() {
        assert!(overlaps(0x200, 0x200, Width::Word));
        assert!(overlaps(0x200, 0x203, Width::Byte));
        assert!(!overlaps(0x200, 0x204, Width::Byte));
        assert!(overlaps(0x200, 0x1fe, Width::Word));
        assert!(!overlaps(0x200, 0x1ff, Width::Byte));
    }

    #[test]
    fn schemes_report_page_protection() {
        assert!(Pst::new().uses_page_protection());
        assert!(PstRemap::new().uses_page_protection());
    }
}
