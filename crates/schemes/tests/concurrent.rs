//! Concurrency correctness tests: every scheme must make a contended
//! LL/SC counter exact, keep SC mutual exclusion, and expose its
//! documented cost signature (instrumentation counts, faults, aborts).

use adbt_engine::{MachineConfig, MachineCore, VcpuOutcome};
use adbt_isa::asm::assemble;
use adbt_mmu::Width;
use adbt_schemes::SchemeKind;

const THREADS: u32 = 8;
const ITERS: u32 = 2_000;

fn counter_program() -> String {
    format!(
        r#"
        mov32 r5, counter
        mov32 r6, #{ITERS}
    outer:
    retry:
        ldrex r1, [r5]
        add   r1, r1, #1
        strex r2, r1, [r5]
        cmp   r2, #0
        bne   retry
        subs  r6, r6, #1
        bne   outer
        mov   r0, #0
        svc   #0
        .align 4096
    counter:
        .word 0
    "#
    )
}

fn run_counter(kind: SchemeKind, threads: u32) -> (MachineCore, adbt_engine::RunReport, u32) {
    let machine = MachineCore::new(
        MachineConfig {
            mem_size: 8 << 20,
            ..MachineConfig::default()
        },
        kind.build(),
    )
    .unwrap();
    let image = assemble(&counter_program(), 0x1000).unwrap();
    machine.load_image(&image);
    let report = machine.run_threaded(machine.make_vcpus(threads, 0x1000));
    let counter = image.symbol("counter").unwrap();
    let value = machine.space.load(counter, Width::Word).unwrap();
    (machine, report, value)
}

/// The LL/SC counter is exact under every scheme: increments are the
/// ABA-free case, so even PICO-CAS must be exact here.
///
/// PICO-HTM is the documented exception at high thread counts: the
/// paper reports it stops making progress beyond ~8 threads, and this
/// reproduction surfaces that as `Livelocked`. Completed threads must
/// still have been exact, so the counter equals the *completed* work.
#[test]
fn contended_counter_is_exact_under_every_scheme() {
    for kind in SchemeKind::ALL {
        let (_, report, value) = run_counter(kind, THREADS);
        if kind == SchemeKind::PicoHtm && !report.all_ok() {
            for outcome in &report.outcomes {
                assert!(
                    matches!(
                        outcome,
                        VcpuOutcome::Exited(0) | VcpuOutcome::Livelocked { .. }
                    ),
                    "{kind}: unexpected outcome {outcome:?}"
                );
            }
            // Committed increments are monotone and bounded; corruption
            // would overshoot.
            assert!(value <= THREADS * ITERS, "{kind}: counter overshot");
            continue;
        }
        assert!(report.all_ok(), "{kind}: outcomes {:?}", report.outcomes);
        assert_eq!(value, THREADS * ITERS, "{kind}: lost updates");
        if kind != SchemeKind::PicoHtm {
            // (PICO-HTM's `sc` counts attempts including commit-aborted
            // ones, which are neither successes nor `sc_failures`.)
            assert_eq!(
                report.stats.sc - report.stats.sc_failures,
                (THREADS * ITERS) as u64,
                "{kind}: successful SC count mismatch"
            );
        }
    }
}

/// Single-threaded runs must never fail an SC (no competition).
#[test]
fn single_thread_never_fails_sc() {
    for kind in SchemeKind::ALL {
        let (_, report, value) = run_counter(kind, 1);
        assert!(report.all_ok(), "{kind}");
        assert_eq!(value, ITERS, "{kind}");
        assert_eq!(report.stats.sc_failures, 0, "{kind}: spurious SC failures");
    }
}

/// Store-instrumenting schemes must show their signature costs.
#[test]
fn cost_signatures_match_design() {
    // HST: inline table sets for stores + LLs, zero helper calls per store.
    let (_, report, _) = run_counter(SchemeKind::Hst, 4);
    assert!(
        report.stats.htable_sets >= report.stats.ll,
        "HST sets on LL"
    );
    // SC goes through one helper each.
    assert!(report.stats.helper_calls >= report.stats.sc);

    // HST-WEAK: no store instrumentation beyond LL's entry claim.
    let (_, weak, _) = run_counter(SchemeKind::HstWeak, 4);
    assert_eq!(
        weak.stats.htable_sets, weak.stats.ll,
        "HST-WEAK must not instrument stores"
    );
    assert_eq!(
        weak.stats.exclusive_entries, 0,
        "HST-WEAK never stops the world"
    );

    // PICO-CAS: no helpers, no table, no exclusive sections.
    let (_, cas, _) = run_counter(SchemeKind::PicoCas, 4);
    assert_eq!(cas.stats.helper_calls, 0);
    assert_eq!(cas.stats.htable_sets, 0);
    assert_eq!(cas.stats.exclusive_entries, 0);

    // PICO-ST: every guest store is a helper call.
    let (_, st, _) = run_counter(SchemeKind::PicoSt, 4);
    assert!(st.stats.helper_calls >= st.stats.stores + st.stats.ll + st.stats.sc);

    // HST: SC runs stop-the-world.
    assert!(report.stats.exclusive_entries > 0, "HST SC is exclusive");

    // PST: mprotect traffic.
    let (_, pst, _) = run_counter(SchemeKind::Pst, 4);
    assert!(pst.stats.mprotect_calls > 0, "PST protects pages");
    assert!(pst.stats.mprotect_ns > 0);

    // PST-REMAP: remap traffic, no stop-the-world on the SC path.
    let (_, remap, _) = run_counter(SchemeKind::PstRemap, 4);
    assert!(remap.stats.remap_calls > 0, "PST-REMAP remaps pages");

    // HTM schemes: transactions happened.
    let (_, htm, _) = run_counter(SchemeKind::HstHtm, 4);
    assert!(htm.stats.htm_txns > 0);
    let (_, pico_htm, _) = run_counter(SchemeKind::PicoHtm, 4);
    assert!(pico_htm.stats.htm_txns > 0);
}

/// A mixed workload: plain stores to one page race with LL/SC on a
/// *different* page; every strong scheme must keep both exact, and PST
/// must observe false-sharing faults when the plain stores share the
/// synchronization variable's page.
#[test]
fn pst_false_sharing_is_detected_and_survivable() {
    // `noise` sits on the same 4 KiB page as `counter`.
    let program = r#"
        mov32 r5, counter
        mov32 r7, noise
        svc   #2            ; r0 = tid
        lsl   r0, r0, #2
        add   r7, r7, r0    ; per-thread noise slot, same page as counter
        mov   r6, #500
    outer:
        str   r6, [r7]      ; plain store to the protected page
    retry:
        ldrex r1, [r5]
        add   r1, r1, #1
        strex r2, r1, [r5]
        cmp   r2, #0
        bne   retry
        subs  r6, r6, #1
        bne   outer
        mov   r0, #0
        svc   #0
        .align 4096
    counter:
        .word 0
    noise:
        .space 256
    "#;
    for kind in [SchemeKind::Pst, SchemeKind::PstRemap] {
        let machine = MachineCore::new(
            MachineConfig {
                mem_size: 8 << 20,
                ..MachineConfig::default()
            },
            kind.build(),
        )
        .unwrap();
        let image = assemble(program, 0x1000).unwrap();
        machine.load_image(&image);
        let report = machine.run_threaded(machine.make_vcpus(4, 0x1000));
        assert!(report.all_ok(), "{kind}: {:?}", report.outcomes);
        let counter = image.symbol("counter").unwrap();
        assert_eq!(
            machine.space.load(counter, Width::Word).unwrap(),
            4 * 500,
            "{kind}"
        );
        // Pages must end the run fully unprotected (all monitors retired).
        let page = counter >> 12;
        assert_eq!(
            machine.space.perms(page),
            Some(adbt_mmu::Perms::RWX),
            "{kind}: page left protected"
        );
    }
}

/// Deterministic false-sharing check: in lockstep, thread 1 stores to the
/// protected page while thread 0 sits between LL and SC. The store must
/// fault, be completed by the handler (false sharing), and leave thread
/// 0's monitor intact so its SC succeeds.
#[test]
fn pst_false_sharing_fault_path_is_exact() {
    // Thread 0: LL counter, pause, SC. Thread 1: store to `noise` (same
    // page), then exit. Explicit schedule: t0 up to its LL (3 steps),
    // all of t1, then t0 finishes.
    let program = r#"
        mov32 r5, counter
        svc   #2            ; r0 = tid
        cmp   r0, #2
        beq   storer
        ; --- thread 0: the LL/SC pair ---
        ldrex r1, [r5]
        add   r1, r1, #1
        strex r2, r1, [r5]
        mov   r0, r2        ; exit with SC status (0 = success)
        svc   #0
    storer:
        mov   r6, #9
        str   r6, [r5, #64] ; same page as counter: false sharing
        mov   r0, #0
        svc   #0
        .align 4096
    counter:
        .word 0
        .space 128
    "#;
    for kind in [SchemeKind::Pst, SchemeKind::PstRemap] {
        let machine = MachineCore::new(
            MachineConfig {
                mem_size: 4 << 20,
                max_block_insns: 1,
                ..MachineConfig::default()
            },
            kind.build(),
        )
        .unwrap();
        let image = assemble(program, 0x1000).unwrap();
        machine.load_image(&image);
        // t0: movw,movt,svc,cmp,beq,ldrex = 6 steps; then t1 fully; then t0.
        let schedule: Vec<u32> = [0; 6].into_iter().chain([1; 16]).chain([0; 16]).collect();
        let report = machine.run_lockstep(
            machine.make_vcpus(2, 0x1000),
            adbt_engine::Schedule::Explicit(schedule),
        );
        assert_eq!(
            report.outcomes[0],
            VcpuOutcome::Exited(0),
            "{kind}: false sharing must not break the monitor"
        );
        assert_eq!(report.outcomes[1], VcpuOutcome::Exited(0), "{kind}");
        assert_eq!(
            report.stats.false_sharing_faults, 1,
            "{kind}: exactly one false-sharing fault expected"
        );
        let counter = image.symbol("counter").unwrap();
        assert_eq!(
            machine.space.load(counter, Width::Word).unwrap(),
            1,
            "{kind}"
        );
        assert_eq!(
            machine.space.load(counter + 64, Width::Word).unwrap(),
            9,
            "{kind}: handler must complete the false-sharing store"
        );
    }
}

/// Deterministic true-conflict check: a store *to the monitored word*
/// between LL and SC must break the monitor and fail the SC.
#[test]
fn pst_true_conflict_breaks_the_monitor() {
    let program = r#"
        mov32 r5, counter
        svc   #2
        cmp   r0, #2
        beq   storer
        ldrex r1, [r5]
        add   r1, r1, #1
        strex r2, r1, [r5]
        mov   r0, r2        ; exit with SC status (1 = failed)
        svc   #0
    storer:
        mov   r6, #55
        str   r6, [r5]      ; store to the monitored word itself
        mov   r0, #0
        svc   #0
        .align 4096
    counter:
        .word 0
    "#;
    for kind in [SchemeKind::Pst, SchemeKind::PstRemap] {
        let machine = MachineCore::new(
            MachineConfig {
                mem_size: 4 << 20,
                max_block_insns: 1,
                ..MachineConfig::default()
            },
            kind.build(),
        )
        .unwrap();
        let image = assemble(program, 0x1000).unwrap();
        machine.load_image(&image);
        let schedule: Vec<u32> = [0; 6].into_iter().chain([1; 16]).chain([0; 16]).collect();
        let report = machine.run_lockstep(
            machine.make_vcpus(2, 0x1000),
            adbt_engine::Schedule::Explicit(schedule),
        );
        assert_eq!(
            report.outcomes[0],
            VcpuOutcome::Exited(1),
            "{kind}: conflicting store must fail the SC"
        );
        let counter = image.symbol("counter").unwrap();
        assert_eq!(
            machine.space.load(counter, Width::Word).unwrap(),
            55,
            "{kind}: the plain store wins; the SC must not have written"
        );
        assert_eq!(report.stats.false_sharing_faults, 0, "{kind}");
    }
}

/// PICO-HTM's region transactions commit under light contention and the
/// run stays exact; aborts (if any) roll back cleanly.
#[test]
fn pico_htm_region_rollback_is_transparent() {
    let (_, report, value) = run_counter(SchemeKind::PicoHtm, 4);
    assert!(report.all_ok(), "{:?}", report.outcomes);
    assert_eq!(value, 4 * ITERS);
    // Every guest LL began a region.
    assert!(report.stats.htm_txns >= report.stats.ll);
}

/// Drain the machine through the lock-free *mutual exclusion* shape:
/// a spin mutex built on LL/SC protecting a non-atomic read-modify-write.
/// Any scheme that lets two SCs succeed on the same LL generation would
/// corrupt the protected counter.
#[test]
fn llsc_spin_mutex_protects_plain_rmw() {
    let program = r#"
        mov32 r5, lock
        mov32 r7, shared
        mov   r6, #1000
    outer:
    acquire:
        ldrex r1, [r5]
        cmp   r1, #0
        bne   acquire_wait
        mov   r1, #1
        strex r2, r1, [r5]
        cmp   r2, #0
        bne   acquire
        b     critical
    acquire_wait:
        yield
        b     acquire
    critical:
        dmb
        ldr   r1, [r7]      ; plain, non-atomic RMW under the lock
        add   r1, r1, #1
        str   r1, [r7]
        dmb
        mov   r1, #0
        str   r1, [r5]      ; release: plain store
        subs  r6, r6, #1
        bne   outer
        mov   r0, #0
        svc   #0
        .align 4096
    lock:
        .word 0
        .align 64
    shared:
        .word 0
    "#;
    // PICO-CAS included: a mutex is ABA-tolerant (0→1 transitions only).
    for kind in SchemeKind::ALL {
        // PICO-HTM's transaction spans acquire→…; the plain release store
        // is outside the region, so the mutex pattern is fine for it too.
        let machine = MachineCore::new(
            MachineConfig {
                mem_size: 8 << 20,
                ..MachineConfig::default()
            },
            kind.build(),
        )
        .unwrap();
        let image = assemble(program, 0x1000).unwrap();
        machine.load_image(&image);
        let report = machine.run_threaded(machine.make_vcpus(4, 0x1000));
        assert!(
            report.outcomes.iter().all(|o| o.is_success()),
            "{kind}: {:?}",
            report.outcomes
        );
        let shared = image.symbol("shared").unwrap();
        assert_eq!(
            machine.space.load(shared, Width::Word).unwrap(),
            4 * 1000,
            "{kind}: mutual exclusion violated"
        );
        // The lock must end released.
        let lock = image.symbol("lock").unwrap();
        assert_eq!(machine.space.load(lock, Width::Word).unwrap(), 0, "{kind}");
    }
}

/// Crash cleanliness: a guest that clobbers its monitor with clrex must
/// see the subsequent SC fail, under every scheme.
#[test]
fn clrex_clears_the_monitor_everywhere() {
    let program = r#"
        mov32 r5, cell
        ldrex r1, [r5]
        clrex
        add   r1, r1, #1
        strex r2, r1, [r5]
        mov   r0, r2        ; exit code = strex status: must be 1 (failed)
        svc   #0
        .align 4096
    cell:
        .word 7
    "#;
    for kind in SchemeKind::ALL {
        let machine = MachineCore::new(
            MachineConfig {
                mem_size: 4 << 20,
                ..MachineConfig::default()
            },
            kind.build(),
        )
        .unwrap();
        let image = assemble(program, 0x1000).unwrap();
        machine.load_image(&image);
        let report = machine.run_threaded(machine.make_vcpus(1, 0x1000));
        assert_eq!(
            report.outcomes[0],
            VcpuOutcome::Exited(1),
            "{kind}: SC after clrex must fail"
        );
        let cell = image.symbol("cell").unwrap();
        assert_eq!(
            machine.space.load(cell, Width::Word).unwrap(),
            7,
            "{kind}: SC after clrex must not write"
        );
    }
}
