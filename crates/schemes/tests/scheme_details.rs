//! Targeted per-scheme behaviour tests: PST's page-protection lifecycle,
//! HST's benign hash collisions, and PST-REMAP's remap window under
//! concurrent readers.

use adbt_engine::{MachineConfig, MachineCore, Schedule, VcpuOutcome};
use adbt_isa::asm::assemble;
use adbt_mmu::{Perms, Width};
use adbt_schemes::SchemeKind;

fn machine_with(kind: SchemeKind, config: MachineConfig) -> MachineCore {
    MachineCore::new(config, kind.build()).unwrap()
}

/// PST protection lifecycle, step by step in lockstep mode: the page is
/// writable before LL, read-only while the monitor is armed, and
/// writable again after the SC retires the last monitor.
#[test]
fn pst_protection_follows_the_monitor() {
    let program = r#"
        mov32 r5, var
        ldrex r1, [r5]          ; arm: page goes read-only
        add   r1, r1, #1
        strex r2, r1, [r5]      ; retire: page back to RWX
        mov   r0, r2
        svc   #0
        .align 4096
    var:
        .word 10
    "#;
    let m = machine_with(
        SchemeKind::Pst,
        MachineConfig {
            mem_size: 2 << 20,
            max_block_insns: 1,
            ..MachineConfig::default()
        },
    );
    let image = assemble(program, 0x1_0000).unwrap();
    m.load_image(&image);
    let var = image.symbol("var").unwrap();
    let page = var >> 12;
    assert_eq!(m.space.perms(page), Some(Perms::RWX), "before run");

    // Drive vCPU 0 up to (and including) the ldrex: movw,movt,ldrex = 3
    // steps; then stop (schedule exhausts and the second vCPU — a parked
    // observer that never runs guest code — keeps the run alive is not
    // needed: use explicit schedule then inspect after full run).
    // Lockstep runs to completion, so instead verify the protection
    // effects via the fault statistics and final state.
    let report = m.run_lockstep(m.make_vcpus(1, 0x1_0000), Schedule::RoundRobin);
    assert_eq!(report.outcomes[0], VcpuOutcome::Exited(0));
    assert_eq!(m.space.load(var, Width::Word).unwrap(), 11);
    assert_eq!(
        m.space.perms(page),
        Some(Perms::RWX),
        "page must end unprotected"
    );
    // One protect (LL) + one reopen + (no re-protect: last monitor).
    assert!(report.stats.mprotect_calls >= 2);
}

/// Two PST monitors on the same page: the page stays protected until the
/// *last* monitor retires.
#[test]
fn pst_shared_page_stays_protected_until_last_monitor() {
    // Thread 0 arms on var0, thread 1 arms on var1 (same page), then
    // each SCs. Explicit schedule interleaves: LL0, LL1, SC0, SC1.
    let program = r#"
        mov32 r5, var0
        svc   #2
        cmp   r0, #2
        beq   second
        ldrex r1, [r5]
        add   r1, r1, #1
        strex r2, r1, [r5]
        mov   r0, r2
        svc   #0
    second:
        add   r5, r5, #64       ; var1, same page
        ldrex r1, [r5]
        add   r1, r1, #2
        strex r2, r1, [r5]
        mov   r0, r2
        svc   #0
        .align 4096
    var0:
        .word 5
        .space 60
        .word 7                 ; var1 at +64
    "#;
    let m = machine_with(
        SchemeKind::Pst,
        MachineConfig {
            mem_size: 2 << 20,
            max_block_insns: 1,
            ..MachineConfig::default()
        },
    );
    let image = assemble(program, 0x1_0000).unwrap();
    m.load_image(&image);
    // t0: movw,movt,svc,cmp,beq,ldrex = 6 steps. t1: movw,movt,svc,cmp,
    // beq,add,ldrex = 7 steps. Then t0 finishes, then t1.
    let schedule: Vec<u32> = [0; 6]
        .into_iter()
        .chain([1; 7])
        .chain([0; 8])
        .chain([1; 8])
        .collect();
    let report = m.run_lockstep(m.make_vcpus(2, 0x1_0000), Schedule::Explicit(schedule));
    assert_eq!(
        report.outcomes[0],
        VcpuOutcome::Exited(0),
        "t0 SC must succeed"
    );
    assert_eq!(
        report.outcomes[1],
        VcpuOutcome::Exited(0),
        "t1 SC must succeed"
    );
    let var0 = image.symbol("var0").unwrap();
    assert_eq!(m.space.load(var0, Width::Word).unwrap(), 6);
    assert_eq!(m.space.load(var0 + 64, Width::Word).unwrap(), 9);
    assert_eq!(m.space.perms(var0 >> 12), Some(Perms::RWX));
}

/// HST hash collisions are benign (paper §III-A): a store to a
/// *different* address that hashes to the same entry makes the SC fail
/// spuriously, and the guest's retry loop recovers.
#[test]
fn hst_hash_collision_fails_sc_but_retry_recovers() {
    // With the default 2^16-entry table, addresses 4*2^16 bytes apart
    // collide. var at `var`, collider at `var + 0x40000`.
    let program = r#"
        mov32 r5, var
        mov32 r7, var+0x40000   ; collides with var in the 2^16-entry table
        svc   #2
        cmp   r0, #2
        beq   storer
        mov   r6, #0            ; retry counter
    retry:
        add   r6, r6, #1
        ldrex r1, [r5]
        add   r1, r1, #1
        strex r2, r1, [r5]
        cmp   r2, #0
        bne   retry
        mov   r0, r6            ; exit code = attempts taken
        svc   #0
    storer:
        mov   r1, #9
        str   r1, [r7]          ; colliding-entry store
        mov   r0, #0
        svc   #0
        .align 4096
    var:
        .word 0
    "#;
    let m = machine_with(
        SchemeKind::Hst,
        MachineConfig {
            mem_size: 2 << 20,
            max_block_insns: 1,
            ..MachineConfig::default()
        },
    );
    let image = assemble(program, 0x1_0000).unwrap();
    m.load_image(&image);
    let var = image.symbol("var").unwrap();
    // Verify the collision premise against the real table.
    assert_eq!(
        m.store_test.index(var),
        m.store_test.index(var + 0x40000),
        "test addresses must collide (var = {var:#x})"
    );
    // Schedule: t0 through its LL (movw,movt,movw,movt,svc,cmp,beq,mov,
    // add,ldrex(HtableSet+MonitorArm in one step) = 10 steps), then the
    // storer completely, then t0.
    let schedule: Vec<u32> = [0; 10].into_iter().chain([1; 16]).chain([0; 32]).collect();
    let report = m.run_lockstep(m.make_vcpus(2, 0x1_0000), Schedule::Explicit(schedule));
    let attempts = match report.outcomes[0] {
        VcpuOutcome::Exited(code) => code,
        ref other => panic!("{other:?}"),
    };
    assert!(
        attempts >= 2,
        "the colliding store must have stolen the entry once (attempts = {attempts})"
    );
    assert_eq!(
        m.space.load(var, Width::Word).unwrap(),
        1,
        "retry recovered"
    );
    assert!(report.stats.sc_failures >= 1);
}

/// The same interleaving under HST-WEAK does NOT fail the SC: the
/// colliding access is a plain store, which weak atomicity ignores.
#[test]
fn hst_weak_ignores_colliding_plain_stores() {
    let program = r#"
        mov32 r5, var
        mov32 r7, var+0x40000
        svc   #2
        cmp   r0, #2
        beq   storer
        mov   r6, #0
    retry:
        add   r6, r6, #1
        ldrex r1, [r5]
        add   r1, r1, #1
        strex r2, r1, [r5]
        cmp   r2, #0
        bne   retry
        mov   r0, r6
        svc   #0
    storer:
        mov   r1, #9
        str   r1, [r7]
        mov   r0, #0
        svc   #0
        .align 4096
    var:
        .word 0
    "#;
    let m = machine_with(
        SchemeKind::HstWeak,
        MachineConfig {
            mem_size: 2 << 20,
            max_block_insns: 1,
            ..MachineConfig::default()
        },
    );
    let image = assemble(program, 0x1_0000).unwrap();
    m.load_image(&image);
    let schedule: Vec<u32> = [0; 10].into_iter().chain([1; 16]).chain([0; 32]).collect();
    let report = m.run_lockstep(m.make_vcpus(2, 0x1_0000), Schedule::Explicit(schedule));
    assert_eq!(
        report.outcomes[0],
        VcpuOutcome::Exited(1),
        "first attempt must succeed: stores are not instrumented"
    );
    assert_eq!(report.stats.sc_failures, 0);
}

/// PST-REMAP under real threads: a reader hammering the monitored page
/// while a writer runs SCs must always see one of the legal values
/// (remap windows block or retry the reader; nothing tears).
#[test]
fn pst_remap_readers_survive_remap_windows() {
    let program = r#"
        mov32 r5, var
        svc   #2
        cmp   r0, #2
        beq   reader
        ; writer: 300 increments via LL/SC (each SC = remap window)
        mov   r6, #300
    wloop:
    retry:
        ldrex r1, [r5]
        add   r1, r1, #1
        strex r2, r1, [r5]
        cmp   r2, #0
        bne   retry
        subs  r6, r6, #1
        bne   wloop
        mov   r0, #0
        svc   #0
    reader:
        ; reader: loads the var and its neighbour 2000 times; values must
        ; be monotone (var only ever increments).
        mov   r6, #2000
        mov   r4, #0            ; last seen
    rloop:
        ldr   r1, [r5]
        cmp   r1, r4
        blt   bad
        mov   r4, r1
        ldr   r2, [r5, #8]      ; neighbour on the same page
        subs  r6, r6, #1
        bne   rloop
        mov   r0, #0
        svc   #0
    bad:
        mov   r0, #1
        svc   #0
        .align 4096
    var:
        .word 0
        .word 0
        .word 0xabcd
    "#;
    let m = machine_with(
        SchemeKind::PstRemap,
        MachineConfig {
            mem_size: 2 << 20,
            ..MachineConfig::default()
        },
    );
    let image = assemble(program, 0x1_0000).unwrap();
    m.load_image(&image);
    let report = m.run_threaded(m.make_vcpus(2, 0x1_0000));
    assert!(
        report.all_ok(),
        "reader observed a non-monotone value or crashed: {:?}",
        report.outcomes
    );
    let var = image.symbol("var").unwrap();
    assert_eq!(m.space.load(var, Width::Word).unwrap(), 300);
    assert_eq!(m.space.load(var + 8, Width::Word).unwrap(), 0xabcd);
    assert!(report.stats.remap_calls >= 2 * 300);
}
