//! Quiescent-state-based reclamation (QSBR) for the translation cache.
//!
//! The engine's dispatch loop holds references into the block arena
//! (the current block, a predecessor's chain link) for the duration of
//! one chained-dispatch step. Invalidated blocks therefore cannot be
//! freed at invalidation time — a parked or mid-step vCPU may still be
//! reading them. This module provides the grace-period machinery that
//! makes deferred freeing sound, hand-rolled because the workspace is
//! fully air-gapped (no `crossbeam-epoch`).
//!
//! # Protocol
//!
//! * A **global epoch** counter advances once per retirement batch
//!   ([`Qsbr::begin_grace`]).
//! * Each participating thread owns a **slot** holding its *local
//!   epoch* — the last global value it observed at a point where it
//!   held **zero** arena references ([`Qsbr::quiesce`]). The engine
//!   announces quiescence at the top of each dispatch step, where the
//!   chain-link reference is `None` by construction.
//! * A retirement batch stamped with epoch `E` may be freed once every
//!   *online* slot holds a local epoch `≥ E` ([`Qsbr::grace_elapsed`]):
//!   each such thread has passed through a zero-reference point after
//!   the retirement, so no reference to the batch can survive.
//!
//! Threads that go **offline** ([`Qsbr::unregister`]) stop blocking
//! grace — a thread that exited holds nothing. Threads that *never*
//! quiesce (parked mid-superblock, spinning in a helper) block grace
//! indefinitely; that is the safety property, not a bug: their held
//! references stay valid until they next reach a zero-reference point.
//!
//! The scheme is deliberately minimal: no per-thread deferral lists
//! (the cache keeps one global limbo list under its own lock — retiring
//! is rare), no epoch wrapping (a `u64` advancing once per invalidation
//! batch outlives any run), and a fixed slot array (the engine caps
//! vCPU counts far below [`MAX_PARTICIPANTS`]).

use std::sync::atomic::{AtomicU64, Ordering};

/// Maximum concurrently-registered participants (vCPU threads plus the
/// run-mode driver). Fixed so the slot array needs no allocation or
/// resizing under readers.
pub const MAX_PARTICIPANTS: usize = 64;

/// Slot value meaning "unclaimed / offline" — never a valid epoch
/// (epochs start at 1 and a u64 counter bumped per retirement batch
/// cannot reach it).
const OFFLINE: u64 = u64::MAX;

/// The quiescent-state epoch tracker. One per machine, shared by every
/// vCPU thread; see the module docs for the protocol.
#[derive(Debug)]
pub struct Qsbr {
    global: AtomicU64,
    slots: [AtomicU64; MAX_PARTICIPANTS],
}

impl Default for Qsbr {
    fn default() -> Qsbr {
        Qsbr::new()
    }
}

impl Qsbr {
    /// Creates a tracker with no participants at epoch 1.
    pub fn new() -> Qsbr {
        Qsbr {
            global: AtomicU64::new(1),
            slots: std::array::from_fn(|_| AtomicU64::new(OFFLINE)),
        }
    }

    /// Claims a slot for the calling thread, initially quiesced at the
    /// current global epoch (a fresh participant cannot hold references
    /// retired before it existed).
    ///
    /// # Panics
    ///
    /// Panics if all [`MAX_PARTICIPANTS`] slots are taken — the engine
    /// registers one participant per vCPU thread and caps thread counts
    /// far below the array size, so exhaustion is a wiring bug.
    pub fn register(&self) -> usize {
        for (i, slot) in self.slots.iter().enumerate() {
            let epoch = self.global.load(Ordering::SeqCst);
            if slot
                .compare_exchange(OFFLINE, epoch, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return i;
            }
        }
        panic!("more than {MAX_PARTICIPANTS} concurrent QSBR participants");
    }

    /// Releases a slot; the thread stops blocking grace periods.
    pub fn unregister(&self, slot: usize) {
        self.slots[slot].store(OFFLINE, Ordering::SeqCst);
    }

    /// Announces a quiescent state: the calling thread holds zero arena
    /// references right now. One global load plus one own-slot store —
    /// cheap enough for once-per-dispatch-step use.
    #[inline]
    pub fn quiesce(&self, slot: usize) {
        let epoch = self.global.load(Ordering::SeqCst);
        self.slots[slot].store(epoch, Ordering::SeqCst);
    }

    /// Opens a grace period for a retirement batch, returning the epoch
    /// the batch must wait on: once [`Qsbr::grace_elapsed`] holds for
    /// it, no participant can still reference anything retired before
    /// this call.
    pub fn begin_grace(&self) -> u64 {
        self.global.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Whether every online participant has announced quiescence at or
    /// after `epoch` — i.e. the grace period opened by the matching
    /// [`Qsbr::begin_grace`] has elapsed.
    pub fn grace_elapsed(&self, epoch: u64) -> bool {
        self.slots.iter().all(|slot| {
            let local = slot.load(Ordering::SeqCst);
            local == OFFLINE || local >= epoch
        })
    }

    /// The current global epoch (diagnostics and tests).
    pub fn current_epoch(&self) -> u64 {
        self.global.load(Ordering::SeqCst)
    }

    /// The local epoch a slot last announced, or `None` if the slot is
    /// offline. Used by debug-mode reachability checks: a retired
    /// segment is freeable only when no online slot's local epoch
    /// predates its retirement.
    pub fn local_epoch(&self, slot: usize) -> Option<u64> {
        match self.slots[slot].load(Ordering::SeqCst) {
            OFFLINE => None,
            epoch => Some(epoch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn grace_elapses_immediately_with_no_participants() {
        let q = Qsbr::new();
        let epoch = q.begin_grace();
        assert!(q.grace_elapsed(epoch));
    }

    #[test]
    fn unquiesced_participant_blocks_grace_until_it_quiesces() {
        let q = Qsbr::new();
        let slot = q.register();
        let epoch = q.begin_grace();
        assert!(!q.grace_elapsed(epoch), "reader never passed a safepoint");
        q.quiesce(slot);
        assert!(q.grace_elapsed(epoch));
    }

    #[test]
    fn unregistering_stops_blocking_grace() {
        let q = Qsbr::new();
        let slot = q.register();
        let epoch = q.begin_grace();
        assert!(!q.grace_elapsed(epoch));
        q.unregister(slot);
        assert!(q.grace_elapsed(epoch), "offline threads hold nothing");
    }

    #[test]
    fn late_registrants_do_not_block_old_grace_periods() {
        let q = Qsbr::new();
        let epoch = q.begin_grace();
        let _slot = q.register();
        assert!(
            q.grace_elapsed(epoch),
            "a thread born after the retirement cannot reference it"
        );
    }

    #[test]
    fn slots_are_reusable_after_unregister() {
        let q = Qsbr::new();
        let a = q.register();
        q.unregister(a);
        let b = q.register();
        assert_eq!(a, b, "freed slot is reclaimed first");
        assert!(q.local_epoch(b).is_some());
    }

    #[test]
    fn one_laggard_blocks_grace_for_everyone() {
        let q = Qsbr::new();
        let fast = q.register();
        let slow = q.register();
        let epoch = q.begin_grace();
        q.quiesce(fast);
        assert!(!q.grace_elapsed(epoch), "slow reader still in its step");
        q.quiesce(slow);
        assert!(q.grace_elapsed(epoch));
    }

    #[test]
    fn threaded_smoke_grace_eventually_elapses() {
        let q = Arc::new(Qsbr::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let slot = q.register();
                for _ in 0..1_000 {
                    q.quiesce(slot);
                }
                q.unregister(slot);
            }));
        }
        let epoch = q.begin_grace();
        for h in handles {
            h.join().unwrap();
        }
        assert!(q.grace_elapsed(epoch));
    }
}
