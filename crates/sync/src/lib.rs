//! # adbt-sync — dependency-free locks with a `parking_lot`-style API
//!
//! The workspace builds in fully air-gapped environments, so it cannot
//! pull `parking_lot` from a registry. This crate wraps `std::sync`
//! behind the subset of `parking_lot`'s API the engine uses:
//!
//! * guard-returning `lock()`/`read()`/`write()` (no `Result`);
//! * `try_lock()` returning `Option`;
//! * a [`Condvar`] whose `wait` takes `&mut MutexGuard`.
//!
//! It also hosts the hand-rolled quiescent-state reclamation scheme
//! ([`epoch::Qsbr`]) the translation-cache lifecycle uses to free
//! retired blocks only after every vCPU has passed a safepoint.
//!
//! # Poisoning policy
//!
//! A `std::sync` lock is *poisoned* when a holder panics; every later
//! acquisition returns `Err(PoisonError)` even though the lock itself is
//! perfectly usable. This crate's explicit policy is to **recover and
//! continue**: the run is already doomed by the panic (vCPU panics abort
//! the run at the thread-join layer), and protected state is guest-level
//! data whose invariants the engine re-validates anyway, so refusing to
//! unlock would only convert one failure into a hang for every other
//! vCPU. Recoveries are **counted**, not silent: each one bumps a global
//! counter readable via [`poison_recoveries`], which test harnesses check
//! to distinguish "clean run" from "run that survived a poisoned lock".
//!
//! Only behavior the engine relies on is reproduced; fairness and
//! micro-contention characteristics are whatever `std::sync` provides
//! on the host.

pub mod epoch;

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::PoisonError;

/// Process-wide count of poisoned-lock recoveries (see the crate-level
/// poisoning policy).
static POISON_RECOVERIES: AtomicU64 = AtomicU64::new(0);

/// Number of times any lock in the process recovered from poisoning.
/// Zero in every healthy run; nonzero means some holder panicked and
/// others kept going past it.
pub fn poison_recoveries() -> u64 {
    POISON_RECOVERIES.load(Ordering::Relaxed)
}

/// Counts and unwraps one poisoning recovery.
fn recover<G>(err: PoisonError<G>) -> G {
    POISON_RECOVERIES.fetch_add(1, Ordering::Relaxed);
    err.into_inner()
}

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]; releases the lock on drop.
///
/// Holds an `Option` internally so [`Condvar::wait`] can move the
/// underlying std guard out and back in place.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking; recovers from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(recover)))
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard(Some(guard))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(recover(e)))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable compatible with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub fn new() -> Condvar {
        Condvar::default()
    }

    /// Atomically releases the guard's lock and parks until notified,
    /// reacquiring before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present outside wait");
        let inner = self.0.wait(inner).unwrap_or_else(recover);
        guard.0 = Some(inner);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-access guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access, blocking; recovers from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(recover)
    }

    /// Acquires exclusive access, blocking; recovers from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(recover)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_and_try_lock() {
        let m = Mutex::new(1);
        {
            let mut g = m.lock();
            *g += 1;
            assert!(m.try_lock().is_none());
        }
        assert_eq!(*m.try_lock().expect("free"), 2);
    }

    #[test]
    fn condvar_wait_roundtrips_guard() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cond) = &*pair2;
            let mut started = lock.lock();
            *started = true;
            cond.notify_all();
        });
        let (lock, cond) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cond.wait(&mut started);
        }
        t.join().unwrap();
        assert!(*started);
    }

    #[test]
    fn rwlock_allows_parallel_readers() {
        let l = RwLock::new(5);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 10);
        drop((r1, r2));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(41));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 41);
    }

    /// Recoveries must be counted, not silent: every acquisition path
    /// (blocking lock, try_lock, RwLock read/write) bumps the global
    /// counter when it unwraps a poisoned lock. The counter is
    /// process-global and tests run in parallel, so assert on deltas.
    #[test]
    fn poison_recoveries_are_counted() {
        let before = poison_recoveries();

        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the mutex");
        })
        .join();
        assert_eq!(*m.lock(), 7);
        assert_eq!(*m.try_lock().expect("free"), 7);

        let rw = Arc::new(RwLock::new(9));
        let rw2 = Arc::clone(&rw);
        let _ = std::thread::spawn(move || {
            let _g = rw2.write();
            panic!("poison the rwlock");
        })
        .join();
        assert_eq!(*rw.read(), 9);
        assert_eq!(*rw.write(), 9);

        // Mutex lock + try_lock + RwLock read + write = 4 recoveries here,
        // plus whatever concurrent tests contributed.
        assert!(
            poison_recoveries() >= before + 4,
            "expected ≥ {} recoveries, saw {}",
            before + 4,
            poison_recoveries()
        );
    }
}
