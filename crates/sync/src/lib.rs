//! # adbt-sync — dependency-free locks with a `parking_lot`-style API
//!
//! The workspace builds in fully air-gapped environments, so it cannot
//! pull `parking_lot` from a registry. This crate wraps `std::sync`
//! behind the subset of `parking_lot`'s API the engine uses:
//!
//! * guard-returning `lock()`/`read()`/`write()` (no `Result` — a
//!   poisoned lock is recovered, since vCPU panics already abort the
//!   run at the thread-join layer);
//! * `try_lock()` returning `Option`;
//! * a [`Condvar`] whose `wait` takes `&mut MutexGuard`.
//!
//! Only behavior the engine relies on is reproduced; fairness and
//! micro-contention characteristics are whatever `std::sync` provides
//! on the host.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]; releases the lock on drop.
///
/// Holds an `Option` internally so [`Condvar::wait`] can move the
/// underlying std guard out and back in place.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking; recovers from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard(Some(guard))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable compatible with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub fn new() -> Condvar {
        Condvar::default()
    }

    /// Atomically releases the guard's lock and parks until notified,
    /// reacquiring before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present outside wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-access guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access, blocking; recovers from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive access, blocking; recovers from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_and_try_lock() {
        let m = Mutex::new(1);
        {
            let mut g = m.lock();
            *g += 1;
            assert!(m.try_lock().is_none());
        }
        assert_eq!(*m.try_lock().expect("free"), 2);
    }

    #[test]
    fn condvar_wait_roundtrips_guard() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cond) = &*pair2;
            let mut started = lock.lock();
            *started = true;
            cond.notify_all();
        });
        let (lock, cond) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cond.wait(&mut started);
        }
        t.join().unwrap();
        assert!(*started);
    }

    #[test]
    fn rwlock_allows_parallel_readers() {
        let l = RwLock::new(5);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 10);
        drop((r1, r2));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(41));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 41);
    }
}
