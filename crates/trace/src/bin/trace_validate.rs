//! `trace_validate` — check that a Chrome trace-event JSON file is
//! structurally sound (see `adbt_trace::validate`). CI runs this over
//! every trace `adbt_run --trace` emits during the soak step.
//!
//! ```text
//! trace_validate <trace.json> [more.json ...]
//! ```
//!
//! Exit code 0 when every file validates; 1 on the first failure.

use adbt_trace::validate::validate_chrome_trace;
use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace_validate <trace.json> [more.json ...]");
        return ExitCode::from(2);
    }
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                return ExitCode::FAILURE;
            }
        };
        match validate_chrome_trace(&text) {
            Ok(check) => println!(
                "{path}: OK — {} events ({} instants, {} spans) on {} track(s)",
                check.events, check.instants, check.spans, check.tracks
            ),
            Err(why) => {
                eprintln!("{path}: INVALID — {why}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
