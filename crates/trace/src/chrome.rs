//! Chrome trace-event JSON export (the format Perfetto and
//! `chrome://tracing` load).
//!
//! One process, one track per vCPU. Instant events (`ph:"i"`) carry the
//! guest address and payload in `args`; exclusive sections become
//! duration spans (`ph:"B"`/`ph:"E"`) so a stop-the-world storm is
//! visible as stacked bars across the per-vCPU tracks. Timestamps are
//! microseconds per the format; the nanosecond clock is emitted with a
//! fractional part so sub-microsecond events stay ordered, and the
//! deterministic instruction clock is emitted as-is (one "µs" per
//! instruction — the shape, not the wall time, is the point there).
//!
//! The writer is hand-rolled: the workspace builds air-gapped with no
//! JSON crate. Its output is what `validate::validate_chrome_trace`
//! accepts — CI round-trips one through the other.

use crate::{TraceEvent, TraceKind};

/// Which clock stamped the events (see [`crate::TraceEvent::ts`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Clock {
    /// Nanoseconds since the recorder epoch (threaded runs).
    Nanos,
    /// Retired guest instructions (deterministic/simulated runs).
    Insns,
}

impl Clock {
    fn ts(self, raw: u64) -> String {
        match self {
            // µs with the ns residue as the fractional part.
            Clock::Nanos => format!("{}.{:03}", raw / 1000, raw % 1000),
            Clock::Insns => raw.to_string(),
        }
    }
}

/// The process id every track lives under (arbitrary but consistent).
const PID: u32 = 1;

/// Renders a full Chrome trace-event document.
pub fn render(per_vcpu: &[(u32, Vec<TraceEvent>)], clock: Clock) -> String {
    render_with_extras(per_vcpu, clock, &[])
}

/// Like [`render`], with extra top-level key/value pairs appended after
/// `traceEvents` — the values must already be valid JSON (used to embed
/// the histogram summary in the same file). Viewers ignore unknown
/// top-level keys.
pub fn render_with_extras(
    per_vcpu: &[(u32, Vec<TraceEvent>)],
    clock: Clock,
    extras: &[(&str, String)],
) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |line: String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };

    push(
        format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":{PID},\"tid\":0,\
             \"args\":{{\"name\":\"adbt\"}}}}"
        ),
        &mut first,
    );
    for &(tid, _) in per_vcpu {
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":{PID},\"tid\":{tid},\
                 \"args\":{{\"name\":\"vcpu {tid}\"}}}}"
            ),
            &mut first,
        );
    }

    for (tid, events) in per_vcpu {
        // Pre-scan: an exit whose enter was overwritten by ring
        // wraparound has no matching "B" left in the ring. Dropping such
        // exits (the old repair) erased the section entirely; instead,
        // synthesize the missing opens at the track's first surviving
        // timestamp — the span's start is clamped to the ring horizon,
        // which is the truthful rendering of a torn recording — so every
        // surviving "E" still pairs and the section stays visible.
        let mut scan_depth = 0usize;
        let mut orphans = 0usize;
        for event in events {
            match event.kind {
                TraceKind::ExclusiveEnter => scan_depth += 1,
                TraceKind::ExclusiveExit => {
                    if scan_depth == 0 {
                        orphans += 1;
                    } else {
                        scan_depth -= 1;
                    }
                }
                _ => {}
            }
        }
        let first_ts = events.first().map_or(0, |e| e.ts);
        for _ in 0..orphans {
            push(
                format!(
                    "{{\"name\":\"exclusive\",\"ph\":\"B\",\"ts\":{},\"pid\":{PID},\
                     \"tid\":{tid},\"args\":{{\"waited_ns\":0,\"synthesized\":true}}}}",
                    clock.ts(first_ts)
                ),
                &mut first,
            );
        }

        let mut open_spans = orphans;
        let mut last_ts = first_ts;
        for event in events {
            last_ts = last_ts.max(event.ts);
            let ts = clock.ts(event.ts);
            match event.kind {
                TraceKind::ExclusiveEnter => {
                    open_spans += 1;
                    push(
                        format!(
                            "{{\"name\":\"exclusive\",\"ph\":\"B\",\"ts\":{ts},\"pid\":{PID},\
                             \"tid\":{tid},\"args\":{{\"waited_ns\":{}}}}}",
                            event.value
                        ),
                        &mut first,
                    );
                }
                TraceKind::ExclusiveExit => {
                    // Unreachable after the pre-scan (every orphan got a
                    // synthesized open); kept as a belt against a
                    // miscounted scan so the document stays balanced.
                    if open_spans == 0 {
                        continue;
                    }
                    open_spans -= 1;
                    push(
                        format!(
                            "{{\"name\":\"exclusive\",\"ph\":\"E\",\"ts\":{ts},\"pid\":{PID},\
                             \"tid\":{tid}}}"
                        ),
                        &mut first,
                    );
                }
                kind => {
                    push(
                        format!(
                            "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{ts},\"pid\":{PID},\
                             \"tid\":{tid},\"s\":\"t\",\
                             \"args\":{{\"addr\":\"{:#010x}\",\"value\":{}}}}}",
                            kind.name(),
                            event.addr,
                            event.value
                        ),
                        &mut first,
                    );
                }
            }
        }
        // A run halted mid-section (watchdog) leaves spans open; close
        // them at the track's final timestamp so viewers render them.
        for _ in 0..open_spans {
            push(
                format!(
                    "{{\"name\":\"exclusive\",\"ph\":\"E\",\"ts\":{},\"pid\":{PID},\"tid\":{tid}}}",
                    clock.ts(last_ts)
                ),
                &mut first,
            );
        }
    }

    out.push_str("\n],\n\"displayTimeUnit\":\"ns\"");
    for (key, value) in extras {
        out.push_str(&format!(",\n\"{key}\":{value}"));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_chrome_trace;

    fn event(ts: u64, tid: u32, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            ts,
            tid,
            kind,
            addr: 0x1000,
            value: 7,
        }
    }

    #[test]
    fn instants_and_spans_round_trip_through_the_validator() {
        let per_vcpu = vec![
            (
                1,
                vec![
                    event(100, 1, TraceKind::LlIssue),
                    event(250, 1, TraceKind::ExclusiveEnter),
                    event(900, 1, TraceKind::ExclusiveExit),
                    event(950, 1, TraceKind::ScOk),
                ],
            ),
            (2, vec![event(400, 2, TraceKind::ScFailInjected)]),
        ];
        let json = render(&per_vcpu, Clock::Nanos);
        let check = validate_chrome_trace(&json).expect("exporter output must validate");
        // 2 metadata + process meta + 4 + 1 events, one span pair.
        assert_eq!(check.spans, 1);
        assert_eq!(check.instants, 3);
        assert!(json.contains("\"name\":\"vcpu 2\""));
        assert!(
            json.contains("\"ts\":0.100"),
            "ns become fractional µs: {json}"
        );
        assert!(json.contains("\"addr\":\"0x00001000\""));
    }

    #[test]
    fn unmatched_spans_are_repaired() {
        // Enter whose exit was never written (halt), and an exit whose
        // enter was overwritten by ring wrap: both must still validate.
        let per_vcpu = vec![
            (1, vec![event(10, 1, TraceKind::ExclusiveEnter)]),
            (2, vec![event(20, 2, TraceKind::ExclusiveExit)]),
        ];
        let json = render(&per_vcpu, Clock::Insns);
        let check = validate_chrome_trace(&json).expect("repaired output validates");
        assert_eq!(
            check.spans, 2,
            "open enter is auto-closed AND the orphan exit gets a synthesized open"
        );
        assert!(
            json.contains("\"synthesized\":true"),
            "the repair marks the synthetic open: {json}"
        );
    }

    #[test]
    fn ring_wraparound_orphans_open_at_the_ring_horizon() {
        // A wrapped ring: the enter at ts=5 was overwritten, leaving
        // [instant(30), exit(40), enter(50), exit(60)]. The orphan exit
        // must get its open at the first surviving timestamp (30), keep
        // per-track timestamps non-decreasing, and leave the later real
        // pair untouched.
        let per_vcpu = vec![(
            1,
            vec![
                event(30, 1, TraceKind::LlIssue),
                event(40, 1, TraceKind::ExclusiveExit),
                event(50, 1, TraceKind::ExclusiveEnter),
                event(60, 1, TraceKind::ExclusiveExit),
            ],
        )];
        let json = render(&per_vcpu, Clock::Insns);
        let check = validate_chrome_trace(&json).expect("wrapped ring output validates");
        assert_eq!(check.spans, 2);
        let synth = json
            .find("\"synthesized\":true")
            .expect("synthetic open present");
        // The synthetic open is stamped at the track's first event.
        assert!(json[..synth].contains("\"ts\":30"), "{json}");
    }

    #[test]
    fn insn_clock_is_integral_and_extras_are_embedded() {
        let per_vcpu = vec![(1, vec![event(12345, 1, TraceKind::Translate)])];
        let json = render_with_extras(
            &per_vcpu,
            Clock::Insns,
            &[("histograms", "{\"x\":1}".to_string())],
        );
        assert!(json.contains("\"ts\":12345,"));
        assert!(json.contains("\"histograms\":{\"x\":1}"));
        validate_chrome_trace(&json).expect("extras must not break the document");
    }
}
