//! Log-bucketed (HDR-style) latency histograms with atomic buckets.
//!
//! One bucket per power of two: bucket 0 holds the value 0, bucket `i`
//! (i ≥ 1) holds values in `[2^(i-1), 2^i)`. That gives ~2× resolution
//! over the full `u64` range in 65 fixed counters — the classic
//! HdrHistogram trade for latency data, where relative error matters
//! and tail buckets must never saturate.
//!
//! Recording is one atomic increment (plus min/max maintenance), so
//! vCPU threads feed the same histogram without coordination; the
//! summary statistics are read after the run.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: value 0, then one per leading-bit position.
pub const BUCKETS: usize = 65;

/// A concurrent power-of-two-bucketed histogram.
pub struct LogHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl LogHistogram {
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket a value lands in: 0 → 0, otherwise `floor(log2(v))+1`.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The half-open `[lo, hi)` range bucket `i` covers. The top bucket
    /// reports `hi = u64::MAX` (its true upper bound saturates).
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 1),
            64 => (1 << 63, u64::MAX),
            _ => (1 << (i - 1), 1 << i),
        }
    }

    /// Records one sample. Wait-free; callable from any thread.
    pub fn record(&self, value: u64) {
        self.buckets[LogHistogram::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        let min = self.min.load(Ordering::Relaxed);
        if min == u64::MAX && self.count() == 0 {
            0
        } else {
            min
        }
    }

    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    fn bucket(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// Text rendering: summary line plus one bar per non-empty bucket.
    pub fn render(&self, name: &str, unit: &str) -> String {
        let mut out = format!(
            "{name}: count={} min={} max={} mean={:.1} ({unit})\n",
            self.count(),
            self.min(),
            self.max(),
            self.mean()
        );
        let peak = (0..BUCKETS).map(|i| self.bucket(i)).max().unwrap_or(0);
        for i in 0..BUCKETS {
            let n = self.bucket(i);
            if n == 0 {
                continue;
            }
            let (lo, hi) = LogHistogram::bucket_bounds(i);
            let bar = "#".repeat(((n * 40).div_ceil(peak.max(1))) as usize);
            out.push_str(&format!("  [{lo:>12}, {hi:>12}) {n:>8} {bar}\n"));
        }
        out
    }

    /// Hand-rolled JSON object (the workspace builds air-gapped).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
            self.count(),
            self.sum(),
            self.min(),
            self.max()
        );
        let mut first = true;
        for i in 0..BUCKETS {
            let n = self.bucket(i);
            if n == 0 {
                continue;
            }
            let (lo, hi) = LogHistogram::bucket_bounds(i);
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{{\"lo\":{lo},\"hi\":{hi},\"count\":{n}}}"));
        }
        out.push_str("]}");
        out
    }
}

/// The three latencies the tracing plane aggregates, per the paper's
/// cost model: how long SC retries spin, how long entering the
/// stop-the-world section takes, and how deep HTM abort streaks run
/// before a commit or a degradation.
pub struct Histograms {
    /// First failed SC to the eventually-successful SC, nanoseconds
    /// (instructions in deterministic modes).
    pub sc_retry: LogHistogram,
    /// `start_exclusive` wait, nanoseconds.
    pub exclusive_wait: LogHistogram,
    /// Consecutive aborts ended by a commit or a degradation.
    pub htm_abort_streak: LogHistogram,
}

impl Default for Histograms {
    fn default() -> Histograms {
        Histograms::new()
    }
}

impl Histograms {
    pub fn new() -> Histograms {
        Histograms {
            sc_retry: LogHistogram::new(),
            exclusive_wait: LogHistogram::new(),
            htm_abort_streak: LogHistogram::new(),
        }
    }

    /// Whether any histogram saw a sample (gates `--histograms` noise).
    pub fn any_samples(&self) -> bool {
        self.sc_retry.count() > 0
            || self.exclusive_wait.count() > 0
            || self.htm_abort_streak.count() > 0
    }

    /// Text rendering of all three histograms.
    pub fn render(&self, time_unit: &str) -> String {
        let mut out = String::new();
        out.push_str(&self.sc_retry.render("sc_retry_latency", time_unit));
        out.push_str(
            &self
                .exclusive_wait
                .render("exclusive_entry_wait", time_unit),
        );
        out.push_str(&self.htm_abort_streak.render("htm_abort_streak", "aborts"));
        out
    }

    /// JSON object keyed by histogram name.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"sc_retry\":{},\"exclusive_wait\":{},\"htm_abort_streak\":{}}}",
            self.sc_retry.to_json(),
            self.exclusive_wait.to_json(),
            self.htm_abort_streak.to_json()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(LogHistogram::bucket_index(0), 0);
        assert_eq!(LogHistogram::bucket_index(1), 1);
        assert_eq!(LogHistogram::bucket_index(2), 2);
        assert_eq!(LogHistogram::bucket_index(3), 2);
        assert_eq!(LogHistogram::bucket_index(4), 3);
        assert_eq!(LogHistogram::bucket_index(1023), 10);
        assert_eq!(LogHistogram::bucket_index(1024), 11);
        assert_eq!(LogHistogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bounds_and_index_agree_on_every_bucket() {
        for i in 0..BUCKETS {
            let (lo, hi) = LogHistogram::bucket_bounds(i);
            assert_eq!(LogHistogram::bucket_index(lo), i, "lo of bucket {i}");
            // The last value strictly inside the bucket maps back too
            // (the top bucket's reported hi is the saturated u64::MAX,
            // which itself still lands in bucket 64).
            let last = if i == 64 { u64::MAX } else { hi - 1 };
            assert_eq!(LogHistogram::bucket_index(last), i, "hi-1 of bucket {i}");
        }
    }

    #[test]
    fn records_land_in_their_buckets() {
        let h = LogHistogram::new();
        for v in [0, 1, 2, 3, 700, 800, 1 << 20] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 6 + 1500 + (1 << 20));
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1 << 20);
        assert_eq!(h.buckets[0].load(Ordering::Relaxed), 1); // 0
        assert_eq!(h.buckets[1].load(Ordering::Relaxed), 1); // 1
        assert_eq!(h.buckets[2].load(Ordering::Relaxed), 2); // 2, 3
        assert_eq!(h.buckets[10].load(Ordering::Relaxed), 2); // 700, 800
        assert_eq!(h.buckets[21].load(Ordering::Relaxed), 1); // 2^20
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.to_json().contains("\"buckets\":[]"));
    }

    #[test]
    fn render_and_json_shapes() {
        let h = Histograms::new();
        assert!(!h.any_samples());
        h.sc_retry.record(500);
        h.exclusive_wait.record(2048);
        h.htm_abort_streak.record(3);
        assert!(h.any_samples());
        let text = h.render("ns");
        assert!(text.contains("sc_retry_latency: count=1"));
        assert!(text.contains("exclusive_entry_wait"));
        let json = h.to_json();
        assert!(json.contains("\"sc_retry\":{\"count\":1"));
        assert!(json.contains("{\"lo\":2048,\"hi\":4096,\"count\":1}"));
        assert!(json.contains("{\"lo\":2,\"hi\":4,\"count\":1}"));
    }
}
