//! # adbt-trace — the always-available flight recorder
//!
//! A lock-free tracing plane for the adbt engine: one fixed-capacity,
//! power-of-two ring buffer per vCPU holding compact binary
//! [`TraceEvent`] records, written by the owning thread only. The
//! discipline mirrors `VcpuStats`: the *disabled* path is a single
//! predicted branch (`Option::is_some` on the context's handle), and
//! the *enabled* path is a handful of `Relaxed` stores plus one relaxed
//! index bump — no locks, no fences, no allocation.
//!
//! When the ring wraps, the oldest events are overwritten: the recorder
//! is a *flight recorder*, not a full log. That is exactly what the
//! watchdog wants — the last N events per vCPU leading up to a livelock
//! — and what keeps the enabled-path cost flat regardless of run
//! length.
//!
//! Readers ([`TraceRing::snapshot`], [`TraceRing::last_n`]) run after
//! the run (or after a watchdog halt) and tolerate torn records: a slot
//! being overwritten mid-read decodes to an invalid kind and is
//! skipped. No reader ever blocks a writer.
//!
//! Timestamps are either monotonic nanoseconds since the recorder's
//! epoch (threaded mode) or the vCPU's retired-instruction count
//! (deterministic/simulated modes) — callers pick; the exporters in
//! [`chrome`] are told which clock was used.
//!
//! Alongside the rings, [`TraceRecorder`] owns the log-bucketed latency
//! histograms ([`hist`]) for SC-retry latency, exclusive-entry wait,
//! and HTM abort-streak length. Export goes through [`chrome`] (Chrome
//! trace-event JSON, loadable in Perfetto) and is checked by the
//! in-tree validator in [`validate`] — the workspace builds air-gapped,
//! so both the writer and the checker are hand-rolled here.

pub mod chrome;
pub mod hist;
pub mod validate;

pub use hist::{Histograms, LogHistogram};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What happened. The discriminants are stable wire values: a torn ring
/// slot decodes to an out-of-range discriminant and is dropped by
/// [`TraceKind::from_u16`], so readers never see garbage kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum TraceKind {
    /// LL issued; the monitor is now armed on `addr`.
    LlIssue = 1,
    /// SC succeeded; `value` is the stored word.
    ScOk = 2,
    /// SC failed organically (monitor lost, CAS lost, precondition).
    ScFail = 3,
    /// SC failed because the chaos plane injected the failure.
    ScFailInjected = 4,
    /// `clrex`: the monitor was cleared explicitly.
    Clrex = 5,
    /// Exclusive section entered (world stopped); `value` is the wait
    /// in nanoseconds, saturated to 32 bits. Rendered as the opening
    /// edge of a duration span.
    ExclusiveEnter = 6,
    /// Exclusive section left (world resumed); closes the span.
    ExclusiveExit = 7,
    /// This vCPU parked at a safepoint for someone else's exclusive
    /// section; `value` is the park time in nanoseconds (saturated).
    SafepointPark = 8,
    /// A page-protection call (PST family); `addr` is the page.
    Mprotect = 9,
    /// A page-remap round trip (PST-REMAP); `addr` is the page.
    Remap = 10,
    /// A guest store trapped on a protected page (true sharing).
    PageFault = 11,
    /// A fault on a page whose monitor belongs to someone else's
    /// unrelated word — the paper's false-sharing fault.
    FalseSharing = 12,
    /// HTM transaction (or transactional region) began.
    HtmBegin = 13,
    /// HTM transaction committed; `value` is the abort streak the
    /// commit ended (0 = first try).
    HtmCommit = 14,
    /// HTM transaction aborted; `value` is the [`AbortReason`]-style
    /// cause code from `adbt-htm`.
    HtmAbort = 15,
    /// The degradation ladder fired: HTM region or SC storm fell back
    /// to the stop-the-world path; `value` is the streak length.
    Degrade = 16,
    /// A block-chaining slot was patched; `addr` is the source block's
    /// pc, `value` the target block id.
    ChainPatch = 17,
    /// A guest block was translated; `addr` is its pc.
    Translate = 18,
    /// The chaos plane injected a fault; `value` is the site index.
    Chaos = 19,
    /// Throttled watchdog heartbeat; `addr` is the current pc.
    Heartbeat = 20,
    /// A plain guest store (checker timelines only — never recorded on
    /// the threaded hot path).
    GuestStore = 21,
    /// A hot block was promoted into a tier-2 superblock; `addr` is the
    /// entry block's guest pc, `value` the superblock's cache id.
    Promote = 22,
    /// Execution left a superblock through a deopt side exit back to the
    /// block-granular tier; `addr` is the resume pc, `value` the
    /// superblock's entry pc.
    Deopt = 23,
    /// A translated block was invalidated (SMC store, chaos storm);
    /// `addr` is the victim's guest pc, `value` its cache id.
    Invalidate = 24,
    /// A cache-pressure flush pass retired a batch of blocks; `addr` is
    /// the number of blocks retired, `value` the number of superblocks
    /// demoted.
    Flush = 25,
    /// Epoch reclamation freed retired translations after a grace
    /// period; `addr` is the number of blocks freed, `value` the number
    /// of fully-reclaimed arena segments so far.
    Reclaim = 26,
    /// The adaptive arbiter scored an epoch; `addr` is the hot site (0
    /// if none), `value` packs the action in the high half-word and the
    /// target candidate index in the low.
    AdaptDecision = 27,
    /// The adaptive arbiter executed a scheme migration; `addr` is the
    /// hot site (0 if none), `value` the new active candidate index.
    AdaptMigrate = 28,
}

impl TraceKind {
    /// Every kind, in discriminant order (used by decode and tests).
    pub const ALL: [TraceKind; 28] = [
        TraceKind::LlIssue,
        TraceKind::ScOk,
        TraceKind::ScFail,
        TraceKind::ScFailInjected,
        TraceKind::Clrex,
        TraceKind::ExclusiveEnter,
        TraceKind::ExclusiveExit,
        TraceKind::SafepointPark,
        TraceKind::Mprotect,
        TraceKind::Remap,
        TraceKind::PageFault,
        TraceKind::FalseSharing,
        TraceKind::HtmBegin,
        TraceKind::HtmCommit,
        TraceKind::HtmAbort,
        TraceKind::Degrade,
        TraceKind::ChainPatch,
        TraceKind::Translate,
        TraceKind::Chaos,
        TraceKind::Heartbeat,
        TraceKind::GuestStore,
        TraceKind::Promote,
        TraceKind::Deopt,
        TraceKind::Invalidate,
        TraceKind::Flush,
        TraceKind::Reclaim,
        TraceKind::AdaptDecision,
        TraceKind::AdaptMigrate,
    ];

    /// The short name exporters print (`Perfetto` track-event names).
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::LlIssue => "ll",
            TraceKind::ScOk => "sc_ok",
            TraceKind::ScFail => "sc_fail",
            TraceKind::ScFailInjected => "sc_fail_injected",
            TraceKind::Clrex => "clrex",
            TraceKind::ExclusiveEnter => "exclusive",
            TraceKind::ExclusiveExit => "exclusive_exit",
            TraceKind::SafepointPark => "safepoint_park",
            TraceKind::Mprotect => "mprotect",
            TraceKind::Remap => "remap",
            TraceKind::PageFault => "page_fault",
            TraceKind::FalseSharing => "false_sharing",
            TraceKind::HtmBegin => "htm_begin",
            TraceKind::HtmCommit => "htm_commit",
            TraceKind::HtmAbort => "htm_abort",
            TraceKind::Degrade => "degrade",
            TraceKind::ChainPatch => "chain_patch",
            TraceKind::Translate => "translate",
            TraceKind::Chaos => "chaos",
            TraceKind::Heartbeat => "heartbeat",
            TraceKind::GuestStore => "store",
            TraceKind::Promote => "promote",
            TraceKind::Deopt => "deopt",
            TraceKind::Invalidate => "invalidate",
            TraceKind::Flush => "flush",
            TraceKind::Reclaim => "reclaim",
            TraceKind::AdaptDecision => "adapt_decision",
            TraceKind::AdaptMigrate => "adapt_migrate",
        }
    }

    /// Decodes a wire discriminant; `None` for torn or future values.
    pub fn from_u16(raw: u16) -> Option<TraceKind> {
        TraceKind::ALL.get(raw.wrapping_sub(1) as usize).copied()
    }
}

/// One decoded flight-recorder record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the recorder epoch (threaded mode) or the
    /// writing vCPU's retired-instruction count (deterministic modes).
    pub ts: u64,
    /// The writing vCPU's tid (1-based, as everywhere in the engine).
    pub tid: u32,
    pub kind: TraceKind,
    /// Guest address payload (0 when the kind has none).
    pub addr: u32,
    /// Kind-specific payload — see the [`TraceKind`] variants.
    pub value: u32,
}

impl TraceEvent {
    /// One-line rendering for diagnostic dumps (watchdog reports).
    pub fn render(&self) -> String {
        format!(
            "[{:>12}] {:<16} addr={:#010x} value={}",
            self.ts,
            self.kind.name(),
            self.addr,
            self.value
        )
    }
}

/// A ring slot: three relaxed words. `kind` doubles as the torn-read
/// sentinel — slots start at 0, which no [`TraceKind`] decodes to.
#[derive(Default)]
struct Slot {
    ts: AtomicU64,
    kind: AtomicU64,
    payload: AtomicU64,
}

/// The per-vCPU flight-recorder ring: fixed power-of-two capacity,
/// single writer (the owning vCPU thread), overwrite-oldest semantics.
///
/// `record` is wait-free and issues only `Relaxed` stores: the ring is
/// a diagnostic artifact read after the run (or after a watchdog halt),
/// not a synchronization channel, so torn records are acceptable and
/// are filtered out on decode.
pub struct TraceRing {
    tid: u32,
    mask: u64,
    /// Total records ever written (not wrapped): `head & mask` is the
    /// next slot, `head.min(capacity)` the live record count.
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl TraceRing {
    /// Creates a ring holding `1 << capacity_pow2` events.
    pub fn new(tid: u32, capacity_pow2: u32) -> TraceRing {
        let capacity = 1usize << capacity_pow2;
        let slots = (0..capacity).map(|_| Slot::default()).collect();
        TraceRing {
            tid,
            mask: capacity as u64 - 1,
            head: AtomicU64::new(0),
            slots,
        }
    }

    /// The owning vCPU's tid.
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// The fixed capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (≥ the number still held).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Appends one event, overwriting the oldest once full. Writer-side
    /// only — must be called from the owning vCPU's thread.
    #[inline]
    pub fn record(&self, ts: u64, kind: TraceKind, addr: u32, value: u32) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head & self.mask) as usize];
        slot.ts.store(ts, Ordering::Relaxed);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.payload
            .store((addr as u64) << 32 | value as u64, Ordering::Relaxed);
        self.head.store(head.wrapping_add(1), Ordering::Relaxed);
    }

    /// Decodes the live window, oldest first. Tolerates concurrent
    /// writers: a slot torn mid-overwrite decodes to an invalid kind
    /// and is dropped rather than surfaced as garbage.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let head = self.head.load(Ordering::Relaxed);
        let len = head.min(self.slots.len() as u64);
        let mut out = Vec::with_capacity(len as usize);
        for seq in head - len..head {
            let slot = &self.slots[(seq & self.mask) as usize];
            let Some(kind) = TraceKind::from_u16(slot.kind.load(Ordering::Relaxed) as u16) else {
                continue;
            };
            let payload = slot.payload.load(Ordering::Relaxed);
            out.push(TraceEvent {
                ts: slot.ts.load(Ordering::Relaxed),
                tid: self.tid,
                kind,
                addr: (payload >> 32) as u32,
                value: payload as u32,
            });
        }
        out
    }

    /// The newest `n` events, oldest first — the watchdog's last-N
    /// diagnostic window.
    pub fn last_n(&self, n: usize) -> Vec<TraceEvent> {
        let mut events = self.snapshot();
        if events.len() > n {
            events.drain(..events.len() - n);
        }
        events
    }
}

/// Default per-vCPU ring capacity: 2^12 = 4096 events (96 KiB/vCPU).
pub const DEFAULT_RING_POW2: u32 = 12;

/// How many trailing events the watchdog dumps per vCPU.
pub const WATCHDOG_TAIL: usize = 32;

/// The machine-wide recorder: hands each vCPU its private ring, owns
/// the shared epoch for the nanosecond clock, and aggregates the
/// latency histograms (whose buckets are plain atomics, so vCPUs
/// record into them without coordination).
pub struct TraceRecorder {
    rings: Mutex<Vec<Arc<TraceRing>>>,
    epoch: Instant,
    capacity_pow2: u32,
    /// SC-retry latency, exclusive-entry wait, HTM abort streaks.
    pub hists: Histograms,
}

impl Default for TraceRecorder {
    fn default() -> TraceRecorder {
        TraceRecorder::new()
    }
}

impl TraceRecorder {
    /// A recorder with the default per-vCPU ring capacity.
    pub fn new() -> TraceRecorder {
        TraceRecorder::with_capacity_pow2(DEFAULT_RING_POW2)
    }

    /// A recorder whose rings hold `1 << capacity_pow2` events each.
    pub fn with_capacity_pow2(capacity_pow2: u32) -> TraceRecorder {
        TraceRecorder {
            rings: Mutex::new(Vec::new()),
            epoch: Instant::now(),
            capacity_pow2,
            hists: Histograms::new(),
        }
    }

    /// Nanoseconds since the recorder was created — the shared
    /// monotonic clock threaded-mode events are stamped with.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The ring for `tid`, created on first use. Called once per vCPU
    /// at context setup, never on the hot path.
    pub fn ring(&self, tid: u32) -> Arc<TraceRing> {
        let mut rings = self.rings.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(ring) = rings.iter().find(|r| r.tid() == tid) {
            return Arc::clone(ring);
        }
        let ring = Arc::new(TraceRing::new(tid, self.capacity_pow2));
        rings.push(Arc::clone(&ring));
        ring
    }

    /// A per-vCPU writer handle bundling the ring with the recorder
    /// (for the clock and the histograms).
    pub fn handle(self: &Arc<TraceRecorder>, tid: u32) -> TraceHandle {
        TraceHandle {
            ring: self.ring(tid),
            recorder: Arc::clone(self),
        }
    }

    /// Every ring's live window, sorted by tid — the exporter input.
    pub fn snapshot_all(&self) -> Vec<(u32, Vec<TraceEvent>)> {
        let rings = self.rings.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<(u32, Vec<TraceEvent>)> =
            rings.iter().map(|r| (r.tid(), r.snapshot())).collect();
        out.sort_by_key(|&(tid, _)| tid);
        out
    }

    /// The newest `n` events of every ring, sorted by tid — the
    /// watchdog's pre-halt diagnostic.
    pub fn last_events(&self, n: usize) -> Vec<(u32, Vec<TraceEvent>)> {
        let rings = self.rings.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<(u32, Vec<TraceEvent>)> =
            rings.iter().map(|r| (r.tid(), r.last_n(n))).collect();
        out.sort_by_key(|&(tid, _)| tid);
        out
    }
}

/// What an `ExecCtx` holds when tracing is on: the vCPU's private ring
/// plus the shared recorder. Cloning is two `Arc` bumps.
#[derive(Clone)]
pub struct TraceHandle {
    pub ring: Arc<TraceRing>,
    pub recorder: Arc<TraceRecorder>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(ring: &TraceRing, n: u64) {
        for i in 0..n {
            ring.record(i, TraceKind::LlIssue, i as u32, 0);
        }
    }

    #[test]
    fn ring_holds_events_before_wrap() {
        let ring = TraceRing::new(1, 3); // capacity 8
        fill(&ring, 5);
        let events = ring.snapshot();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].ts, 0);
        assert_eq!(events[4].ts, 4);
        assert!(events.iter().all(|e| e.tid == 1));
    }

    #[test]
    fn ring_wraps_and_keeps_the_newest_capacity_events() {
        let ring = TraceRing::new(2, 3); // capacity 8
        fill(&ring, 21);
        assert_eq!(ring.recorded(), 21);
        let events = ring.snapshot();
        assert_eq!(events.len(), 8, "full ring holds exactly its capacity");
        // Oldest-first, and exactly the newest 8 of the 21 writes.
        let ts: Vec<u64> = events.iter().map(|e| e.ts).collect();
        assert_eq!(ts, (13..21).collect::<Vec<u64>>());
        let addrs: Vec<u32> = events.iter().map(|e| e.addr).collect();
        assert_eq!(addrs, (13u32..21).collect::<Vec<u32>>());
    }

    #[test]
    fn ring_wrap_boundary_is_exact() {
        // Exactly capacity writes: nothing lost, nothing duplicated.
        let ring = TraceRing::new(3, 4); // capacity 16
        fill(&ring, 16);
        let ts: Vec<u64> = ring.snapshot().iter().map(|e| e.ts).collect();
        assert_eq!(ts, (0..16).collect::<Vec<u64>>());
        // One more write evicts exactly the oldest event.
        ring.record(99, TraceKind::ScOk, 7, 8);
        let events = ring.snapshot();
        assert_eq!(events.len(), 16);
        assert_eq!(events[0].ts, 1, "event 0 was overwritten");
        let last = events.last().unwrap();
        assert_eq!(
            (last.ts, last.kind, last.addr, last.value),
            (99, TraceKind::ScOk, 7, 8)
        );
    }

    #[test]
    fn empty_and_unwritten_slots_decode_to_nothing() {
        let ring = TraceRing::new(4, 5);
        assert!(ring.snapshot().is_empty());
        assert!(ring.last_n(10).is_empty());
    }

    #[test]
    fn last_n_takes_the_tail() {
        let ring = TraceRing::new(5, 4);
        fill(&ring, 10);
        let tail = ring.last_n(3);
        assert_eq!(tail.iter().map(|e| e.ts).collect::<Vec<_>>(), vec![7, 8, 9]);
        assert_eq!(ring.last_n(100).len(), 10);
    }

    #[test]
    fn payload_packs_and_unpacks() {
        let ring = TraceRing::new(6, 2);
        ring.record(42, TraceKind::ScFailInjected, 0xDEAD_BEEF, 0x1234_5678);
        let e = ring.snapshot()[0];
        assert_eq!(e.ts, 42);
        assert_eq!(e.kind, TraceKind::ScFailInjected);
        assert_eq!(e.addr, 0xDEAD_BEEF);
        assert_eq!(e.value, 0x1234_5678);
    }

    #[test]
    fn kind_wire_values_round_trip() {
        for kind in TraceKind::ALL {
            assert_eq!(TraceKind::from_u16(kind as u16), Some(kind));
        }
        assert_eq!(TraceKind::from_u16(0), None);
        assert_eq!(TraceKind::from_u16(TraceKind::ALL.len() as u16 + 1), None);
        assert_eq!(TraceKind::from_u16(u16::MAX), None);
    }

    #[test]
    fn recorder_reuses_rings_per_tid() {
        let rec = Arc::new(TraceRecorder::with_capacity_pow2(4));
        let a = rec.ring(1);
        let b = rec.ring(2);
        let a2 = rec.ring(1);
        assert!(Arc::ptr_eq(&a, &a2));
        assert!(!Arc::ptr_eq(&a, &b));
        a.record(1, TraceKind::LlIssue, 0, 0);
        b.record(2, TraceKind::ScOk, 0, 0);
        let all = rec.snapshot_all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, 1);
        assert_eq!(all[1].0, 2);
        assert_eq!(rec.last_events(8)[1].1[0].kind, TraceKind::ScOk);
    }
}
