//! In-tree validator for Chrome trace-event JSON.
//!
//! The workspace builds air-gapped, so CI cannot load an emitted trace
//! into Perfetto to prove it is well-formed. This module is the stand-in
//! gate: a minimal recursive-descent JSON parser (strings, numbers,
//! bools, null, arrays, objects — everything the trace writer emits)
//! plus the structural rules a trace-event document must satisfy:
//!
//! * the top level is an object with a `traceEvents` array,
//! * every event is an object carrying `name` (string), `ph` (a known
//!   phase), numeric `ts`, `pid`, and `tid`,
//! * `B`/`E` duration events balance per `(pid, tid)` track and never
//!   go negative (an `E` before any `B` is exactly the malformed shape
//!   Perfetto refuses to stack),
//! * each `E` closes a `B` of the *same name* (properly nested spans),
//!   and duration timestamps never go backwards within a track — the
//!   shapes a torn ring-wraparound repair could otherwise smuggle past
//!   a depth-only check.
//!
//! `trace_validate` (this crate's binary) wraps [`validate_chrome_trace`]
//! for shell use; the exporter's unit tests round-trip through it.

use std::collections::HashMap;

/// A parsed JSON value (numbers as f64, like the format itself).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected byte '{}'", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not paired here; the trace
                            // writer never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(self.err(&format!("bad escape '\\{}'", other as char))),
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number '{text}'")))
    }
}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing garbage after document"));
    }
    Ok(value)
}

/// What a validated trace contains.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total entries in `traceEvents` (metadata included).
    pub events: usize,
    /// Instant (`ph:"i"`/`"I"`) events.
    pub instants: usize,
    /// Matched `B`/`E` duration pairs.
    pub spans: usize,
    /// Distinct `(pid, tid)` tracks seen.
    pub tracks: usize,
}

/// Validates a Chrome trace-event document; returns counts on success
/// and the first structural problem otherwise.
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or("top-level object has no \"traceEvents\"")?;
    let Json::Arr(events) = events else {
        return Err("\"traceEvents\" is not an array".to_string());
    };

    let mut check = TraceCheck {
        events: events.len(),
        ..TraceCheck::default()
    };
    /// Per-(pid, tid) duration-event state: the open-span name stack and
    /// the last duration timestamp (for monotonicity).
    #[derive(Default)]
    struct Track {
        open: Vec<String>,
        last_dur_ts: f64,
    }
    let mut tracks: HashMap<(u64, u64), Track> = HashMap::new();
    for (i, event) in events.iter().enumerate() {
        let ctx = |what: &str| format!("event {i}: {what}");
        if !matches!(event, Json::Obj(_)) {
            return Err(ctx("not an object"));
        }
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing string \"name\""))?;
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing string \"ph\""))?;
        let ts = event
            .get("ts")
            .and_then(Json::as_num)
            .ok_or_else(|| ctx("missing numeric \"ts\""))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(ctx(&format!("bad ts {ts}")));
        }
        let pid = event
            .get("pid")
            .and_then(Json::as_num)
            .ok_or_else(|| ctx("missing numeric \"pid\""))?;
        let tid = event
            .get("tid")
            .and_then(Json::as_num)
            .ok_or_else(|| ctx("missing numeric \"tid\""))?;
        let track = (pid as u64, tid as u64);
        let state = tracks.entry(track).or_insert_with(|| {
            check.tracks += 1;
            Track::default()
        });
        match ph {
            "B" | "E" => {
                if ts < state.last_dur_ts {
                    return Err(ctx(&format!(
                        "\"{ph}\" for '{name}' at ts {ts} goes backwards on track \
                         {track:?} (previous duration ts {})",
                        state.last_dur_ts
                    )));
                }
                state.last_dur_ts = ts;
                if ph == "B" {
                    state.open.push(name.to_string());
                } else {
                    let Some(opened) = state.open.pop() else {
                        return Err(ctx(&format!(
                            "\"E\" for '{name}' with no open \"B\" on track {track:?}"
                        )));
                    };
                    if opened != name {
                        return Err(ctx(&format!(
                            "\"E\" for '{name}' closes open \"B\" for '{opened}' on \
                             track {track:?} (spans must nest by name)"
                        )));
                    }
                    check.spans += 1;
                }
            }
            "i" | "I" => check.instants += 1,
            "X" | "M" | "C" => {}
            other => return Err(ctx(&format!("unknown phase \"{other}\""))),
        }
    }
    for (track, state) in tracks {
        if !state.open.is_empty() {
            return Err(format!(
                "track {track:?} ends with {} unclosed \"B\" event(s)",
                state.open.len()
            ));
        }
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_the_json_the_writer_emits() {
        let doc = parse_json(r#"{"a":[1,2.5,-3e2],"b":"x\n\"y\"","c":true,"d":null,"e":{"f":0}}"#)
            .unwrap();
        assert_eq!(
            doc.get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.5),
                Json::Num(-300.0),
            ]))
        );
        assert_eq!(doc.get("b").unwrap().as_str(), Some("x\n\"y\""));
        assert_eq!(doc.get("c"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("d"), Some(&Json::Null));
        assert_eq!(doc.get("e").unwrap().get("f"), Some(&Json::Num(0.0)));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{} junk",
            "\"unterminated",
            "{'a':1}",
        ] {
            assert!(parse_json(bad).is_err(), "{bad:?} should not parse");
        }
    }

    fn wrap(events: &str) -> String {
        format!("{{\"traceEvents\":[{events}]}}")
    }

    #[test]
    fn accepts_a_minimal_valid_trace() {
        let json = wrap(
            r#"{"name":"ll","ph":"i","ts":1,"pid":1,"tid":1},
               {"name":"exclusive","ph":"B","ts":2,"pid":1,"tid":1},
               {"name":"exclusive","ph":"E","ts":3,"pid":1,"tid":1}"#,
        );
        let check = validate_chrome_trace(&json).unwrap();
        assert_eq!(check.events, 3);
        assert_eq!(check.instants, 1);
        assert_eq!(check.spans, 1);
        assert_eq!(check.tracks, 1);
    }

    #[test]
    fn rejects_missing_fields_and_bad_phases() {
        let no_ts = wrap(r#"{"name":"x","ph":"i","pid":1,"tid":1}"#);
        assert!(validate_chrome_trace(&no_ts).unwrap_err().contains("ts"));
        let bad_ph = wrap(r#"{"name":"x","ph":"Q","ts":1,"pid":1,"tid":1}"#);
        assert!(validate_chrome_trace(&bad_ph)
            .unwrap_err()
            .contains("phase"));
        let not_obj = wrap("42");
        assert!(validate_chrome_trace(&not_obj)
            .unwrap_err()
            .contains("object"));
        assert!(validate_chrome_trace("{}")
            .unwrap_err()
            .contains("traceEvents"));
    }

    #[test]
    fn rejects_unbalanced_spans_per_track() {
        let early_e = wrap(r#"{"name":"x","ph":"E","ts":1,"pid":1,"tid":1}"#);
        assert!(validate_chrome_trace(&early_e)
            .unwrap_err()
            .contains("no open"));
        let dangling_b = wrap(r#"{"name":"x","ph":"B","ts":1,"pid":1,"tid":1}"#);
        assert!(validate_chrome_trace(&dangling_b)
            .unwrap_err()
            .contains("unclosed"));
        // Balance is per-track: tid 1's B cannot be closed by tid 2's E.
        let cross = wrap(
            r#"{"name":"x","ph":"B","ts":1,"pid":1,"tid":1},
               {"name":"x","ph":"E","ts":2,"pid":1,"tid":2}"#,
        );
        assert!(validate_chrome_trace(&cross).is_err());
    }

    #[test]
    fn rejects_name_mismatched_span_nesting() {
        let mismatched = wrap(
            r#"{"name":"outer","ph":"B","ts":1,"pid":1,"tid":1},
               {"name":"inner","ph":"E","ts":2,"pid":1,"tid":1}"#,
        );
        let why = validate_chrome_trace(&mismatched).unwrap_err();
        assert!(why.contains("nest by name"), "{why}");
        // Properly nested same-name spans are fine.
        let nested = wrap(
            r#"{"name":"a","ph":"B","ts":1,"pid":1,"tid":1},
               {"name":"b","ph":"B","ts":2,"pid":1,"tid":1},
               {"name":"b","ph":"E","ts":3,"pid":1,"tid":1},
               {"name":"a","ph":"E","ts":4,"pid":1,"tid":1}"#,
        );
        assert_eq!(validate_chrome_trace(&nested).unwrap().spans, 2);
    }

    #[test]
    fn rejects_backwards_duration_timestamps_per_track() {
        let backwards = wrap(
            r#"{"name":"a","ph":"B","ts":5,"pid":1,"tid":1},
               {"name":"a","ph":"E","ts":3,"pid":1,"tid":1}"#,
        );
        let why = validate_chrome_trace(&backwards).unwrap_err();
        assert!(why.contains("backwards"), "{why}");
        // Monotonicity is per track — another track may be earlier.
        let two_tracks = wrap(
            r#"{"name":"a","ph":"B","ts":5,"pid":1,"tid":1},
               {"name":"a","ph":"E","ts":6,"pid":1,"tid":1},
               {"name":"a","ph":"B","ts":1,"pid":1,"tid":2},
               {"name":"a","ph":"E","ts":2,"pid":1,"tid":2}"#,
        );
        assert_eq!(validate_chrome_trace(&two_tracks).unwrap().spans, 2);
    }
}
