//! Litmus programs for the systematic interleaving checker
//! (`adbt-check`).
//!
//! Unlike [`crate::litmus`], which hard-codes the paper's four Seq
//! interleavings as one pinned lockstep schedule each, these programs
//! carry **no schedule at all**: the checker enumerates schedules itself
//! (instruction-granular, plus every [`adbt_ir::Op::Window`] pause point
//! a scheme emits) and judges each run with the LL/SC shadow-monitor
//! oracle. Each program is small on purpose — the schedule space grows
//! with the atom count, and a dozen guest instructions per thread keep
//! exhaustive low-preemption exploration inside a CI-sized budget.
//!
//! The suite:
//!
//! * [`Litmus::AbaLlsc`] — a single-attempt LL/SC against a competing
//!   thread that drives the word `100 → 200 → 100` with two complete
//!   retry-looped LL/SC pairs. The value returns to what the victim
//!   loaded, so a value-comparing SC (PICO-CAS) succeeds — the ABA bug —
//!   while every monitor-based scheme fails the SC. The interference
//!   uses LL/SC pairs (not plain stores) so even *weak* atomicity is
//!   expected to catch it.
//! * [`Litmus::StoreWindow`] — one plain store racing one LL/SC pair.
//!   Catches schemes whose store instrumentation is not atomic with the
//!   store itself (PICO-ST's check-then-store gap). Weakly-atomic
//!   schemes are *allowed* to miss a plain store, so the oracle only
//!   flags strongly-classified schemes here.
//! * [`Litmus::AbaStack`] — a two-thread, two-node instance of the §IV-A
//!   lock-free stack: the victim is descheduled mid-pop while the
//!   attacker pops and re-pushes the same node.
//!
//! The SMC (self-modifying code) trio exercises the translation-cache
//! lifecycle rather than the atomicity schemes, and is expected *clean*
//! on every scheme — a violation would mean a stale translation survived
//! an invalidation:
//!
//! * [`Litmus::SmcSelf`] — a thread overwrites an instruction in its own
//!   loop between iterations; the patched semantics must be observed on
//!   the next pass (exit code 8, deterministically, in every mode).
//! * [`Litmus::SmcCross`] — one thread patches another thread's loop
//!   body; the victim's iterations are bounded, so every schedule
//!   terminates whether the patch lands early, late, or never.
//! * [`Litmus::SmcSuper`] — the patch lands inside a hot two-block loop
//!   (the shape tiering stitches into a superblock), forcing demotion
//!   back to the block-granular tier when tiering is on.

use crate::stack::{self, StackConfig};

/// The checker's litmus programs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Litmus {
    /// Single-attempt LL/SC vs. an A→B→A driver made of LL/SC pairs.
    AbaLlsc,
    /// A plain store racing an LL/SC pair (the store-test window probe).
    StoreWindow,
    /// The lock-free stack, miniature (2 threads, 2 nodes, 1 op each).
    AbaStack,
    /// A thread stores over its own translated loop body (SMC).
    SmcSelf,
    /// A thread patches *another* thread's translated loop body (SMC).
    SmcCross,
    /// The patch lands inside a promotable hot loop (SMC + tiering).
    SmcSuper,
}

/// A generated litmus program: source text plus per-vCPU entry points.
#[derive(Clone, Debug)]
pub struct LitmusProgram {
    /// Assembly source for [`adbt_isa::asm::assemble`] at
    /// [`crate::IMAGE_BASE`].
    pub source: String,
    /// Entry symbol per vCPU; `None` means the image base (the stack
    /// program dispatches on the thread id itself).
    pub entries: Vec<Option<&'static str>>,
}

impl Litmus {
    /// Every litmus, in report order.
    pub const ALL: [Litmus; 6] = [
        Litmus::AbaLlsc,
        Litmus::StoreWindow,
        Litmus::AbaStack,
        Litmus::SmcSelf,
        Litmus::SmcCross,
        Litmus::SmcSuper,
    ];

    /// The litmus' report/CLI name.
    pub const fn name(self) -> &'static str {
        match self {
            Litmus::AbaLlsc => "aba_llsc",
            Litmus::StoreWindow => "store_window",
            Litmus::AbaStack => "aba_stack",
            Litmus::SmcSelf => "smc_self",
            Litmus::SmcCross => "smc_cross",
            Litmus::SmcSuper => "smc_super",
        }
    }

    /// Looks a litmus up by its [`name`](Litmus::name).
    pub fn by_name(name: &str) -> Option<Litmus> {
        Litmus::ALL.into_iter().find(|l| l.name() == name)
    }

    /// Generates the program.
    pub fn program(self) -> LitmusProgram {
        match self {
            Litmus::AbaLlsc => LitmusProgram {
                source: ABA_LLSC.to_string(),
                entries: vec![Some("victim"), Some("attacker")],
            },
            Litmus::StoreWindow => LitmusProgram {
                source: STORE_WINDOW.to_string(),
                entries: vec![Some("storer"), Some("llsc")],
            },
            Litmus::AbaStack => LitmusProgram {
                source: stack::program(StackConfig {
                    nodes: 2,
                    ops_per_thread: 1,
                    stall: 0,
                    // The checker deschedules the victim wherever it
                    // wants; no artificial window needed.
                    victim_stall: 0,
                })
                .source,
                entries: vec![None, None],
            },
            Litmus::SmcSelf => LitmusProgram {
                source: SMC_SELF.to_string(),
                entries: vec![Some("patcher"), Some("bystander")],
            },
            Litmus::SmcCross => LitmusProgram {
                source: SMC_CROSS.to_string(),
                entries: vec![Some("victim"), Some("patcher")],
            },
            Litmus::SmcSuper => LitmusProgram {
                source: SMC_SUPER.to_string(),
                entries: vec![Some("hot"), Some("bystander")],
            },
        }
    }
}

impl std::fmt::Display for Litmus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The victim's single SC attempt exits with the strex status (0 =
/// stored, 1 = failed); the attacker retry-loops both transitions so it
/// always completes the full A→B→A cycle and exits 0.
const ABA_LLSC: &str = r#"
    victim:
        mov32 r5, x
        ldrex r1, [r5]          ; LL_v(x(100))
        mov   r4, #777
        strex r2, r4, [r5]      ; SC_v(x(100,777)) -- single attempt
        mov   r0, r2
        svc   #0

    attacker:
        mov32 r5, x
    flip:
        ldrex r1, [r5]          ; LL_a(x(100))
        mov   r6, #200
        strex r2, r6, [r5]      ; SC_a(x(100,200))
        cmp   r2, #0
        bne   flip
    flop:
        ldrex r1, [r5]          ; LL_a(x(200))
        mov   r6, #100
        strex r2, r6, [r5]      ; SC_a(x(200,100)) -- back to 100
        cmp   r2, #0
        bne   flop
        mov   r0, #0
        svc   #0

        .align 4096
    x:
        .word 100
"#;

/// One plain store vs. one single-attempt LL/SC pair. The interesting
/// schedules deschedule the storer inside its lowered store sequence
/// (at a scheme's `Op::Window`, if it emits one).
const STORE_WINDOW: &str = r#"
    storer:
        mov32 r5, x
        mov   r6, #200
        str   r6, [r5]          ; S(x(200))
        mov   r0, #0
        svc   #0

    llsc:
        mov32 r5, x
        ldrex r1, [r5]          ; LL(x)
        mov   r4, #777
        strex r2, r4, [r5]      ; SC(x(.,777)) -- single attempt
        mov   r0, r2
        svc   #0

        .align 4096
    x:
        .word 100
"#;

/// Store-to-own-code: the patcher runs its loop body once, overwrites
/// the body's first instruction with the donor instruction (a stash-copy
/// — `ldr` the donor's encoded bytes, `str` them over the target, so the
/// program never hard-codes an encoding), and loops back. The second
/// iteration must execute the patched instruction: exit code 1 + 7 = 8,
/// the same in threaded multi-instruction blocks (the store retires the
/// block it sits in; the stale tail finishes, the re-entry retranslates)
/// and in the checker's single-instruction blocks.
const SMC_SELF: &str = r#"
    patcher:
        mov   r0, #0
        mov   r3, #0
        mov32 r5, ppatch
        mov32 r6, pdonor
    ploop:
    ppatch:
        add   r0, r0, #1        ; patched to: add r0, r0, #7
        add   r3, r3, #1
        cmp   r3, #2
        beq   pdone
        ldr   r2, [r6]
        str   r2, [r5]          ; SMC: store over our own loop body
        b     ploop
    pdone:
        svc   #0                ; exit 8 iff the patch was honored

    bystander:
        mov   r0, #0
        svc   #0

    pdonor:
        add   r0, r0, #7
"#;

/// Cross-vCPU code patch: the patcher rewrites the victim's loop body
/// while the victim iterates a *bounded* number of times, so every
/// schedule terminates. The victim's exit code counts how many
/// iterations ran after the patch landed (0..=6) — any value is legal;
/// what must never happen is a stale translation executing after its
/// invalidation, which the oracle-clean verdict plus the engine's
/// differential tests pin down.
const SMC_CROSS: &str = r#"
    victim:
        mov   r0, #0
        mov   r3, #6
    vloop:
    vpatch:
        add   r0, r0, #0        ; patched to: add r0, r0, #1
        subs  r3, r3, #1
        bne   vloop
        svc   #0                ; exits 0..=6 depending on patch timing

    patcher:
        mov32 r5, vpatch
        mov32 r6, vdonor
        ldr   r2, [r6]
        str   r2, [r5]          ; SMC: patch another vCPU's code
        mov   r0, #0
        svc   #0

    vdonor:
        add   r0, r0, #1
"#;

/// Patch inside a hot loop: eight iterations of a two-block loop (body +
/// latch, the shape tiering stitches into a superblock), with the latch
/// instruction patched when four iterations remain. With the default
/// translation-block size: four pre-patch latch passes add 1 each, the
/// patching pass still runs its already-translated stale latch (+1), and
/// the three remaining passes run the retranslated latch (+3 each) —
/// exit 4 + 1 + 9 = 14. A stale superblock surviving the patch (no
/// demotion) would keep adding 1 and exit below 14.
const SMC_SUPER: &str = r#"
    hot:
        mov   r0, #0
        mov   r3, #8
        mov32 r5, spatch
        mov32 r6, sdonor
    sloop:
        add   r1, r1, #1        ; loop body: its own translation block
        cmp   r3, #4
        bne   sskip
        ldr   r2, [r6]
        str   r2, [r5]          ; SMC: patch the latch mid-loop
    sskip:
    spatch:
        add   r0, r0, #1        ; patched to: add r0, r0, #3
        subs  r3, r3, #1
        bne   sloop
        svc   #0

    bystander:
        mov   r0, #0
        svc   #0

    sdonor:
        add   r0, r0, #3
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use adbt_isa::asm::assemble;

    #[test]
    fn programs_assemble_with_expected_entries() {
        for litmus in Litmus::ALL {
            let program = litmus.program();
            let img = assemble(&program.source, crate::IMAGE_BASE)
                .unwrap_or_else(|e| panic!("{litmus}: {e}"));
            assert_eq!(program.entries.len(), 2, "{litmus}: two vCPUs");
            for sym in program.entries.iter().flatten() {
                assert!(img.symbol(sym).is_some(), "{litmus}: missing {sym}");
            }
        }
    }

    #[test]
    fn synchronization_words_get_their_own_page() {
        // PST write-protects whole pages; keep `x` isolated so false
        // sharing never muddies a litmus verdict.
        for litmus in [Litmus::AbaLlsc, Litmus::StoreWindow] {
            let img = assemble(&litmus.program().source, crate::IMAGE_BASE).unwrap();
            let x = img.symbol("x").unwrap();
            assert_eq!(x % 4096, 0, "{litmus}: x must start a page");
        }
    }

    #[test]
    fn names_round_trip() {
        for litmus in Litmus::ALL {
            assert_eq!(Litmus::by_name(litmus.name()), Some(litmus));
        }
        assert_eq!(Litmus::by_name("nope"), None);
    }
}
