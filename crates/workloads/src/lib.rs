//! # adbt-workloads — guest programs for the CGO'21 experiments
//!
//! Generators for every guest workload the paper's evaluation uses:
//!
//! * [`stack`] — the multi-threaded **lock-free stack** micro-benchmark
//!   of §IV-A, including the host-side ABA verifier (a node whose `next`
//!   points to itself is the paper's corruption witness).
//! * [`parsec`] — eight synthetic kernels mirroring the PARSEC 3.0
//!   programs' synchronization profiles (store:LL/SC ratios, lock
//!   contention, barrier cadence) from the paper's Table I. These are
//!   *models*, not ports: what matters to an atomic-emulation scheme is
//!   the dynamic mix of stores, LL/SC and synchronization shape, which is
//!   what each kernel reproduces (see DESIGN.md).
//! * [`litmus`] — the four ABA sequences Seq1–Seq4 of §IV-A as exactly
//!   schedulable two-thread programs for the engine's lockstep mode.
//! * [`interleave`] — schedule-free miniature litmus programs for the
//!   systematic interleaving checker (`adbt-check`), which enumerates
//!   the schedules itself.
//! * [`rt`] — reusable guest assembly fragments (spin mutex, sense
//!   barrier, atomic add) built on `ldrex`/`strex`, mirroring how pthread
//!   primitives reach LL/SC on real ARM.
//!
//! Everything here produces assembly text plus a layout descriptor; the
//! caller assembles with [`adbt_isa::asm::assemble`] and runs on an
//! `adbt-engine` machine (the `adbt` facade wires this up).

pub mod interleave;
pub mod litmus;
pub mod parsec;
pub mod rt;
pub mod stack;

/// The base guest address where workload images are assembled.
pub const IMAGE_BASE: u32 = 0x1_0000;
