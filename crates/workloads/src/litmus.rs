//! The four ABA litmus sequences of §IV-A as exactly schedulable
//! two-thread guest programs.
//!
//! Thread *a* arms an LL on `x` (initial value `c`), is suspended while
//! thread *b* performs the sequence's interference, then attempts its
//! SC. Under the architecture's LL/SC semantics the SC must fail in all
//! four sequences; the paper classifies each scheme by which sequences
//! it gets right:
//!
//! | sequence | interference | weak atomicity | strong atomicity |
//! |---|---|---|---|
//! | Seq1 | `S_b(d)`, `S_b(c)` | misses (SC succeeds) | fails SC |
//! | Seq2 | `LL/SC_b(c→d)`, `LL/SC_b(d→c)` | fails SC | fails SC |
//! | Seq3 | `LL/SC_b(c→d)`, `S_b(c)` | fails SC | fails SC |
//! | Seq4 | `S_b(d)`, `LL/SC_b(d→c)` | fails SC | fails SC |
//!
//! PICO-CAS (value comparison only) lets the SC succeed in *all four* —
//! the ABA bug. PICO-HTM neither "fails" nor "succeeds" a stale SC: its
//! transaction aborts and transparently re-executes the whole LL→SC
//! region, which is correct but observable as at least one abort.
//!
//! Run these with the engine's lockstep mode, `max_block_insns == 1`,
//! and the schedule from [`schedule`].

/// The initial value `c` at `x`.
pub const INITIAL: u32 = 100;
/// The intermediate value `d` thread b writes.
pub const INTERMEDIATE: u32 = 200;
/// The value thread a's SC tries to store (the paper's `#`).
pub const SC_VALUE: u32 = 777;

/// The four sequences.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Seq {
    /// Plain store away and back: `S_b(d)`, `S_b(c)`.
    Seq1,
    /// Two full LL/SC pairs: `c→d` then `d→c`.
    Seq2,
    /// LL/SC to `d`, plain store back to `c`.
    Seq3,
    /// Plain store to `d`, LL/SC back to `c`.
    Seq4,
}

impl Seq {
    /// All sequences.
    pub const ALL: [Seq; 4] = [Seq::Seq1, Seq::Seq2, Seq::Seq3, Seq::Seq4];

    /// The sequence's paper name.
    pub const fn name(self) -> &'static str {
        match self {
            Seq::Seq1 => "Seq1",
            Seq::Seq2 => "Seq2",
            Seq::Seq3 => "Seq3",
            Seq::Seq4 => "Seq4",
        }
    }

    /// Whether *weak* atomicity already catches this sequence (Seq2–4
    /// involve a competing LL/SC pair; Seq1 is plain stores only).
    pub const fn caught_by_weak(self) -> bool {
        !matches!(self, Seq::Seq1)
    }

    fn thread_b_body(self) -> &'static str {
        match self {
            Seq::Seq1 => {
                r#"
        mov   r6, #200
        str   r6, [r5]          ; S_b(x(d))
        mov   r6, #100
        str   r6, [r5]          ; S_b(x(c))
"#
            }
            Seq::Seq2 => {
                r#"
        ldrex r1, [r5]          ; LL_b(x(c))
        mov   r6, #200
        strex r2, r6, [r5]      ; SC_b(x(c,d))
        ldrex r1, [r5]          ; LL_b(x(d))
        mov   r6, #100
        strex r2, r6, [r5]      ; SC_b(x(d,c))
"#
            }
            Seq::Seq3 => {
                r#"
        ldrex r1, [r5]          ; LL_b(x(c))
        mov   r6, #200
        strex r2, r6, [r5]      ; SC_b(x(c,d))
        mov   r6, #100
        str   r6, [r5]          ; S_b(x(c))
"#
            }
            Seq::Seq4 => {
                r#"
        mov   r6, #200
        str   r6, [r5]          ; S_b(x(d))
        ldrex r1, [r5]          ; LL_b(x(d))
        mov   r6, #100
        strex r2, r6, [r5]      ; SC_b(x(d,c))
"#
            }
        }
    }
}

impl std::fmt::Display for Seq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The assembled image's entry symbols: `(thread_a, thread_b, x)`.
pub const SYMBOLS: (&str, &str, &str) = ("thread_a", "thread_b", "x");

/// Generates the two-thread program for a sequence. Thread a exits with
/// its SC status (0 = succeeded, 1 = failed); thread b exits 0.
pub fn image_source(seq: Seq) -> String {
    format!(
        r#"
    thread_a:
        mov32 r5, x
        ldrex r1, [r5]          ; LL_a(x(c))   <- suspended after this
        mov   r4, #{sc}
        strex r2, r4, [r5]      ; SC_a(x(c,#))
        mov   r0, r2
        svc   #0

    thread_b:
        mov32 r5, x
{body}
        mov   r0, #0
        svc   #0

        .align 4096
    x:
        .word {initial}
"#,
        sc = SC_VALUE,
        body = seq.thread_b_body(),
        initial = INITIAL,
    )
}

/// The lockstep schedule pinning the interleaving: thread a runs through
/// its LL (3 single-instruction steps: `movw`, `movt`, `ldrex`), thread
/// b runs to completion (extra entries on the exited vCPU are skipped),
/// then thread a resumes. The engine falls back to round-robin after the
/// explicit list, which lets HTM-rollback re-executions finish.
pub fn schedule() -> Vec<u32> {
    let mut steps = vec![0; 3];
    steps.extend(std::iter::repeat_n(1, 64));
    steps.extend(std::iter::repeat_n(0, 32));
    steps
}

/// What a scheme should observably do on a sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// The SC must fail (exit code 1, `x` unchanged at the end of b's
    /// interference).
    ScFails,
    /// The SC incorrectly succeeds (exit 0, `x == SC_VALUE`): the bug
    /// the paper demonstrates.
    ScSucceedsIncorrectly,
    /// The LL→SC region aborts and transparently re-executes (exit 0,
    /// `x == SC_VALUE`, at least one HTM abort observed) — correct
    /// behaviour with transaction semantics.
    RegionRetries,
}

#[cfg(test)]
mod tests {
    use super::*;
    use adbt_isa::asm::assemble;

    #[test]
    fn all_sequences_assemble_with_expected_symbols() {
        for seq in Seq::ALL {
            let img =
                assemble(&image_source(seq), 0x1_0000).unwrap_or_else(|e| panic!("{seq}: {e}"));
            for sym in [SYMBOLS.0, SYMBOLS.1, SYMBOLS.2] {
                assert!(img.symbol(sym).is_some(), "{seq}: missing {sym}");
            }
            let x = img.symbol("x").unwrap();
            assert_eq!(x % 4096, 0, "x must get its own page for PST");
            let off = (x - img.base) as usize;
            let initial = u32::from_le_bytes(img.bytes[off..off + 4].try_into().unwrap());
            assert_eq!(initial, INITIAL);
        }
    }

    #[test]
    fn thread_a_ll_lands_on_step_three() {
        // The schedule contract: steps 1–3 of thread a are movw, movt,
        // ldrex. Verify by decoding the image at thread_a.
        let img = assemble(&image_source(Seq::Seq1), 0x1_0000).unwrap();
        let a = img.symbol("thread_a").unwrap();
        let word = |addr: u32| {
            let off = (addr - img.base) as usize;
            u32::from_le_bytes(img.bytes[off..off + 4].try_into().unwrap())
        };
        use adbt_isa::{decode, Insn};
        assert!(matches!(decode(word(a)).unwrap(), Insn::Movw { .. }));
        assert!(matches!(decode(word(a + 4)).unwrap(), Insn::Movt { .. }));
        assert!(matches!(decode(word(a + 8)).unwrap(), Insn::Ldrex { .. }));
    }

    #[test]
    fn weak_classification() {
        assert!(!Seq::Seq1.caught_by_weak());
        assert!(Seq::Seq2.caught_by_weak());
        assert!(Seq::Seq3.caught_by_weak());
        assert!(Seq::Seq4.caught_by_weak());
    }
}
