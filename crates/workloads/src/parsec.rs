//! Synthetic kernels mirroring the PARSEC 3.0 programs' synchronization
//! profiles (paper Table I and §IV).
//!
//! The paper runs eight PARSEC programs (ARM binaries, `simlarge`) under
//! each scheme. What an atomic-emulation scheme sees of a program is its
//! *dynamic mix*: how many plain stores per LL/SC (Table I reports
//! 88×–3000×), whether synchronization is a global lock, fine-grained
//! locks, atomic adds or barriers, and how much private compute separates
//! synchronization points. Each kernel here reproduces one program's mix
//! with the same guest-level primitives real ARM binaries compile to
//! (spin mutexes, sense barriers and `__atomic_fetch_add`, all built on
//! `ldrex`/`strex` — see [`crate::rt`]).
//!
//! Sizing note: per-iteration constants are chosen so the *store:LL/SC
//! ratio* and synchronization cadence land in each program's Table I
//! band; absolute iteration counts scale with the caller's `scale`
//! factor so benches can trade runtime for stability.

use crate::rt;
use std::fmt::Write as _;

/// The eight modelled PARSEC programs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Program {
    /// Embarrassingly parallel option pricing; atomics are rare.
    Blackscholes,
    /// Barrier-phased body tracking; shows the "U"-shaped scaling curve.
    Bodytrack,
    /// Lock-serialized annealing; ~30% parallelism, excluded from the
    /// scalability figure like the paper does.
    Canneal,
    /// Barrier-phased physics solve.
    Facesim,
    /// Fine-grained per-cell locks; the most lock-intensive program.
    Fluidanimate,
    /// Atomic-add heavy frequent-itemset mining.
    Freqmine,
    /// Coarse locks around independent pricing work.
    Swaptions,
    /// Streaming encoder: store-heavy, atomics very rare.
    X264,
}

impl Program {
    /// All programs in the paper's figure order.
    pub const ALL: [Program; 8] = [
        Program::Blackscholes,
        Program::Bodytrack,
        Program::Canneal,
        Program::Facesim,
        Program::Fluidanimate,
        Program::Freqmine,
        Program::Swaptions,
        Program::X264,
    ];

    /// The program's lowercase name.
    pub const fn name(self) -> &'static str {
        match self {
            Program::Blackscholes => "blackscholes",
            Program::Bodytrack => "bodytrack",
            Program::Canneal => "canneal",
            Program::Facesim => "facesim",
            Program::Fluidanimate => "fluidanimate",
            Program::Freqmine => "freqmine",
            Program::Swaptions => "swaptions",
            Program::X264 => "x264",
        }
    }

    /// Parses a program name.
    pub fn from_name(name: &str) -> Option<Program> {
        Program::ALL
            .into_iter()
            .find(|p| p.name() == name.to_ascii_lowercase())
    }

    /// Whether the paper includes the program in scalability figures
    /// (canneal is excluded: ~30% parallelism).
    pub const fn scalable(self) -> bool {
        !matches!(self, Program::Canneal)
    }

    /// The synchronization profile. Primary calibration target: the
    /// store:LL/SC instruction ratio lands in each program's Table I
    /// band (≈88× for the atomic-heavy programs up to ≈3000× for
    /// blackscholes), with the synchronization *shape* (global lock,
    /// fine-grained locks, atomic adds, barriers) matching the program.
    pub const fn spec(self) -> KernelSpec {
        match self {
            Program::Blackscholes => KernelSpec {
                // ratio ≈ 192×32/2 ≈ 3000
                iters: 1024,
                alu_per_iter: 24,
                stores_per_iter: 192,
                lock_every: 32,
                fine_locks: 0,
                atomic_adds_per_lock: 0,
                add_every: 0,
                barrier_every: 0,
            },
            Program::Bodytrack => KernelSpec {
                // ratio ≈ 16/(2/32 + 2/32 + 2/32) ≈ 85 with barrier +
                // locked atomic add included
                iters: 2048,
                alu_per_iter: 16,
                stores_per_iter: 16,
                lock_every: 32,
                fine_locks: 0,
                atomic_adds_per_lock: 1,
                add_every: 0,
                barrier_every: 32,
            },
            Program::Canneal => KernelSpec {
                // ratio ≈ 88×2/2 ≈ 88; the global lock every other
                // iteration is its ~30%-parallel character
                iters: 512,
                alu_per_iter: 8,
                stores_per_iter: 88,
                lock_every: 2,
                fine_locks: 0,
                atomic_adds_per_lock: 0,
                add_every: 0,
                barrier_every: 0,
            },
            Program::Facesim => KernelSpec {
                // ratio ≈ 25/(2/32 + 2/32) ≈ 200
                iters: 2048,
                alu_per_iter: 16,
                stores_per_iter: 25,
                lock_every: 32,
                fine_locks: 0,
                atomic_adds_per_lock: 0,
                add_every: 0,
                barrier_every: 32,
            },
            Program::Fluidanimate => KernelSpec {
                // ratio ≈ 22×8/2 ≈ 88; fine-grained per-cell locks
                iters: 2048,
                alu_per_iter: 8,
                stores_per_iter: 22,
                lock_every: 8,
                fine_locks: 64,
                atomic_adds_per_lock: 0,
                add_every: 0,
                barrier_every: 0,
            },
            Program::Freqmine => KernelSpec {
                // ratio ≈ 11×16/2 ≈ 88; standalone atomic adds
                iters: 2048,
                alu_per_iter: 8,
                stores_per_iter: 11,
                lock_every: 0,
                fine_locks: 0,
                atomic_adds_per_lock: 1,
                add_every: 16,
                barrier_every: 0,
            },
            Program::Swaptions => KernelSpec {
                // ratio ≈ 24×32/2 ≈ 384
                iters: 2048,
                alu_per_iter: 32,
                stores_per_iter: 24,
                lock_every: 32,
                fine_locks: 0,
                atomic_adds_per_lock: 0,
                add_every: 0,
                barrier_every: 0,
            },
            Program::X264 => KernelSpec {
                // ratio ≈ 32×64/2 ≈ 1024
                iters: 2048,
                alu_per_iter: 8,
                stores_per_iter: 32,
                lock_every: 64,
                fine_locks: 0,
                atomic_adds_per_lock: 0,
                add_every: 0,
                barrier_every: 0,
            },
        }
    }
}

impl std::fmt::Display for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A kernel's per-thread shape. All cadence fields (`lock_every`,
/// `barrier_every`, `fine_locks`) must be powers of two (or zero).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelSpec {
    /// Outer iterations per thread at `scale == 1.0`.
    pub iters: u32,
    /// Plain ALU instructions per iteration (private compute).
    pub alu_per_iter: u32,
    /// Plain stores to the thread-private buffer per iteration.
    pub stores_per_iter: u32,
    /// Take a lock every N iterations (0 = never).
    pub lock_every: u32,
    /// 0 = one global lock; otherwise the size of the fine-grained lock
    /// array (lock chosen by iteration index).
    pub fine_locks: u32,
    /// Atomic fetch-adds per synchronization point (with `lock_every ==
    /// 0` these run standalone, the `freqmine` shape).
    pub atomic_adds_per_lock: u32,
    /// Cadence for *standalone* atomic adds (`lock_every == 0` only):
    /// add every N iterations. 0 means every iteration.
    pub add_every: u32,
    /// Barrier every N iterations (0 = never).
    pub barrier_every: u32,
}

/// A generated kernel.
#[derive(Clone, Debug)]
pub struct ParsecProgram {
    /// The program modelled.
    pub program: Program,
    /// Assembly source.
    pub source: String,
    /// The spec after scaling.
    pub spec: KernelSpec,
    /// Threads the image was generated for.
    pub threads: u32,
}

/// The largest thread count a generated image supports (private-buffer
/// sizing).
pub const MAX_THREADS: u32 = 64;

/// Generates a kernel for `threads` vCPUs with total work scaled by
/// `scale` and **divided across threads** (strong scaling, like the
/// paper's fixed `simlarge` inputs): per-thread iterations are
/// `base × scale × 8 / threads`, so ideal speedup over one thread is
/// `threads` and the scalability figures measure how much each scheme's
/// synchronization erodes that.
///
/// # Panics
///
/// Panics if `threads` is 0 or exceeds [`MAX_THREADS`], or if a cadence
/// field in the spec is not a power of two.
pub fn generate(program: Program, threads: u32, scale: f64) -> ParsecProgram {
    assert!((1..=MAX_THREADS).contains(&threads), "bad thread count");
    let mut spec = program.spec();
    // The ×8 keeps per-thread counts meaningful up to 64 threads. The
    // floor guarantees every thread still reaches each synchronization
    // cadence at high thread counts (real PARSEC work units have a
    // minimum granularity too); past the floor, scaling becomes weak
    // rather than strong, which the harness normalization tolerates.
    let floor = spec
        .lock_every
        .max(spec.barrier_every)
        .max(spec.add_every)
        .max(1);
    spec.iters = (((spec.iters as f64 * scale * 8.0) / threads as f64).round() as u32).max(floor);
    // Barrier cadence must divide evenly into remaining counts for all
    // threads; any iters value works because every thread runs the same
    // count — just assert the power-of-two cadence contract.
    for cadence in [
        spec.lock_every,
        spec.barrier_every,
        spec.fine_locks,
        spec.add_every,
    ] {
        assert!(
            cadence == 0 || cadence.is_power_of_two(),
            "cadence fields must be powers of two"
        );
    }

    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"
        ; r0 = thread index (0-based), r1 = nthreads (launch ABI)
        mov32 r5, sync_page
        mov32 r12, barrier_page
        mov32 r7, buffers
        lsl   r2, r0, #12
        add   r7, r7, r2        ; private 4 KiB buffer
        mov   r8, #0            ; buffer cursor
        mov   r9, #0            ; barrier local sense
        mov   r4, #1            ; ALU accumulator
        mov32 r6, #{iters}
    iter_loop:"#,
        iters = spec.iters
    );

    // Private compute: a dependency chain the interpreter can't skip.
    for k in 0..spec.alu_per_iter {
        match k % 4 {
            0 => {
                let _ = writeln!(s, "        add   r4, r4, #3");
            }
            1 => {
                let _ = writeln!(s, "        eor   r4, r4, r6");
            }
            2 => {
                let _ = writeln!(s, "        lsl   r4, r4, #1");
            }
            _ => {
                let _ = writeln!(s, "        orr   r4, r4, #1");
            }
        }
    }

    // Private stores: the Table I numerator.
    for _ in 0..spec.stores_per_iter {
        let _ = writeln!(s, "        str   r4, [r7, r8]");
        let _ = writeln!(s, "        add   r8, r8, #4");
        let _ = writeln!(s, "        and   r8, r8, #4092");
    }

    // Standalone atomic adds (freqmine shape).
    if spec.lock_every == 0 && spec.atomic_adds_per_lock > 0 {
        if spec.add_every > 1 {
            let _ = writeln!(s, "        tst   r6, #{}", spec.add_every - 1);
            let _ = writeln!(s, "        bne   skip_add");
        }
        for k in 0..spec.atomic_adds_per_lock {
            let _ = writeln!(s, "        add   r11, r5, #8");
            let _ = write!(
                s,
                "{}",
                rt::atomic_add(&format!("aa{k}"), "r11", 1, "r2", "r3")
            );
        }
        if spec.add_every > 1 {
            let _ = writeln!(s, "    skip_add:");
        }
    }

    // Locked critical section every `lock_every` iterations.
    if spec.lock_every > 0 {
        if spec.lock_every > 1 {
            let _ = writeln!(s, "        tst   r6, #{}", spec.lock_every - 1);
            let _ = writeln!(s, "        bne   skip_lock");
        }
        if spec.fine_locks > 0 {
            // Pick a lock by iteration index: contention is spread but
            // the lock words share a page (real fluidanimate packs cell
            // locks the same way — and it is what makes PST suffer).
            let _ = writeln!(s, "        mov32 r11, fine_locks_page");
            let _ = writeln!(s, "        and   r2, r6, #{}", spec.fine_locks - 1);
            let _ = writeln!(s, "        lsl   r2, r2, #2");
            let _ = writeln!(s, "        add   r11, r11, r2");
        } else {
            let _ = writeln!(s, "        mov   r11, r5   ; global lock");
        }
        let _ = write!(s, "{}", rt::spin_lock("lk", "r11", "r2", "r3"));
        // Shared-data updates under the lock (plain stores to the shared
        // page — the strong-vs-weak atomicity distinction lives here).
        let _ = writeln!(s, "        ldr   r2, [r5, #16]");
        let _ = writeln!(s, "        add   r2, r2, #1");
        let _ = writeln!(s, "        str   r2, [r5, #16]");
        for k in 0..spec.atomic_adds_per_lock {
            let _ = writeln!(s, "        add   r10, r5, #8");
            let _ = write!(
                s,
                "{}",
                rt::atomic_add(&format!("la{k}"), "r10", 1, "r2", "r3")
            );
        }
        let _ = write!(s, "{}", rt::spin_unlock("r11", "r2"));
        if spec.lock_every > 1 {
            let _ = writeln!(s, "    skip_lock:");
        }
    }

    // Barrier phase.
    if spec.barrier_every > 0 {
        let _ = writeln!(s, "        tst   r6, #{}", spec.barrier_every - 1);
        let _ = writeln!(s, "        bne   skip_barrier");
        let _ = write!(s, "{}", rt::barrier("bar", "r12", "r1", "r9", "r2", "r3"));
        let _ = writeln!(s, "    skip_barrier:");
    }

    let _ = writeln!(
        s,
        r#"        subs  r6, r6, #1
        bne   iter_loop
        mov   r0, #0
        svc   #0

        .align 4096
    sync_page:
        .word 0                 ; global lock
        .word 0                 ; pad
        .word 0                 ; atomic counter (+8)
        .word 0                 ; pad
        .word 0                 ; lock-protected shared word (+16)
        .space 236
        .align 4096
    barrier_page:
        .word 0                 ; arrival count
        .word 0                 ; sense
        .space 248
        .align 4096
    fine_locks_page:
        .space 4096
        .align 4096
    buffers:
        .space {buf}
"#,
        buf = MAX_THREADS * 4096
    );

    ParsecProgram {
        program,
        source: s,
        spec,
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adbt_isa::asm::assemble;

    #[test]
    fn every_kernel_assembles() {
        for program in Program::ALL {
            let generated = generate(program, 8, 0.05);
            assemble(&generated.source, crate::IMAGE_BASE)
                .unwrap_or_else(|e| panic!("{program}: {e}"));
        }
    }

    #[test]
    fn scaling_shrinks_iterations() {
        let full = generate(Program::Swaptions, 4, 1.0);
        let small = generate(Program::Swaptions, 4, 0.01);
        assert!(small.spec.iters < full.spec.iters);
        assert!(small.spec.iters >= 1);
    }

    #[test]
    fn table_one_bands_hold() {
        // Stores per LL/SC: blackscholes ≫ x264 ≫ … ≫ canneal/fluidanimate,
        // spanning roughly the paper's 88×–3000× range. LL/SC per lock
        // acquisition ≈ 1 pair uncontended (plus the release plain store).
        let ratio = |p: Program| {
            let spec = p.spec();
            let iters = spec.iters as f64;
            let stores = spec.stores_per_iter as f64 * iters;
            let lock_events = if spec.lock_every > 0 {
                iters / spec.lock_every as f64
            } else {
                0.0
            };
            let atomic_events = if spec.lock_every == 0 {
                let cadence = spec.add_every.max(1) as f64;
                spec.atomic_adds_per_lock as f64 * iters / cadence
            } else {
                spec.atomic_adds_per_lock as f64 * lock_events
            };
            let barrier_events = if spec.barrier_every > 0 {
                iters / spec.barrier_every as f64
            } else {
                0.0
            };
            // Each lock/add/barrier event executes ≈ one LL/SC pair
            // (2 instructions) uncontended.
            let llsc_insns = 2.0 * (lock_events + atomic_events + barrier_events);
            stores / llsc_insns.max(1.0)
        };
        // Table I bands: atomic-heavy programs ≈ 88×, blackscholes ≈ 3000×.
        let blackscholes = ratio(Program::Blackscholes);
        let canneal = ratio(Program::Canneal);
        let fluidanimate = ratio(Program::Fluidanimate);
        let freqmine = ratio(Program::Freqmine);
        let x264 = ratio(Program::X264);
        assert!(blackscholes > 2500.0, "blackscholes ratio {blackscholes}");
        for (name, value) in [
            ("canneal", canneal),
            ("fluidanimate", fluidanimate),
            ("freqmine", freqmine),
        ] {
            assert!(
                (60.0..120.0).contains(&value),
                "{name} ratio {value} outside the ~88x band"
            );
        }
        assert!(x264 > 500.0, "x264 ratio {x264}");
        assert!(blackscholes > canneal);
    }

    #[test]
    fn names_round_trip() {
        for p in Program::ALL {
            assert_eq!(Program::from_name(p.name()), Some(p));
        }
        assert_eq!(Program::from_name("BODYTRACK"), Some(Program::Bodytrack));
        assert!(Program::from_name("quake").is_none());
    }

    #[test]
    fn canneal_is_not_scalable() {
        assert!(!Program::Canneal.scalable());
        assert_eq!(Program::ALL.iter().filter(|p| p.scalable()).count(), 7);
    }
}
