//! Reusable guest-assembly fragments: the "guest libc" of the workload
//! generators.
//!
//! Real ARM programs reach `ldrex`/`strex` through pthread mutexes,
//! barriers and `__atomic_*` builtins; these fragments are the same
//! shapes, so workloads built from them stress an emulation scheme the
//! way PARSEC stresses QEMU. Each fragment is a `format!`ed code block
//! with caller-supplied unique label prefixes (the assembler has one flat
//! namespace).

use std::fmt::Write as _;

/// Emits a spin-mutex *acquire* on the lock word whose address is in
/// `lock_reg`. Clobbers `t0`/`t1` (register names, e.g. `"r1"`). Labels
/// are prefixed by `label` which must be unique per expansion.
///
/// The loop is the canonical ARM `pthread_mutex_lock` fast path:
/// LL; test; SC; retry — with a `yield` on contention.
pub fn spin_lock(label: &str, lock_reg: &str, t0: &str, t1: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{label}_acquire:");
    let _ = writeln!(s, "    ldrex {t0}, [{lock_reg}]");
    let _ = writeln!(s, "    cmp   {t0}, #0");
    let _ = writeln!(s, "    bne   {label}_wait");
    let _ = writeln!(s, "    mov   {t0}, #1");
    let _ = writeln!(s, "    strex {t1}, {t0}, [{lock_reg}]");
    let _ = writeln!(s, "    cmp   {t1}, #0");
    let _ = writeln!(s, "    bne   {label}_acquire");
    let _ = writeln!(s, "    dmb");
    let _ = writeln!(s, "    b     {label}_locked");
    let _ = writeln!(s, "{label}_wait:");
    let _ = writeln!(s, "    yield");
    let _ = writeln!(s, "    b     {label}_acquire");
    let _ = writeln!(s, "{label}_locked:");
    s
}

/// Emits a spin-mutex *release*: a fence and a plain store of zero —
/// exactly how glibc unlocks on ARM, and exactly the plain-store-on-a-
/// synchronization-variable pattern that distinguishes strong from weak
/// atomicity (paper §II-D).
pub fn spin_unlock(lock_reg: &str, t0: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "    dmb");
    let _ = writeln!(s, "    mov   {t0}, #0");
    let _ = writeln!(s, "    str   {t0}, [{lock_reg}]");
    s
}

/// Emits an atomic fetch-add of `delta` (an immediate) on the word at
/// `addr_reg` — the `__atomic_fetch_add` shape. Clobbers `t0`/`t1`.
pub fn atomic_add(label: &str, addr_reg: &str, delta: u32, t0: &str, t1: &str) -> String {
    atomic_rmw(label, addr_reg, "add", delta, t0, t1)
}

/// Emits an atomic read-modify-write retry loop applying `op` (an ALU
/// mnemonic: `add`, `eor`, `orr`, `and`, …) with immediate `imm` to the
/// word at `addr_reg` — the `__atomic_fetch_<op>` shape. Clobbers
/// `t0`/`t1`.
///
/// When every writer of a word sticks to one commutative-associative op
/// class, the final value is schedule-independent — the property the
/// differential fuzzer's generated programs are built on.
pub fn atomic_rmw(label: &str, addr_reg: &str, op: &str, imm: u32, t0: &str, t1: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{label}_retry:");
    let _ = writeln!(s, "    ldrex {t0}, [{addr_reg}]");
    let _ = writeln!(s, "    {op}   {t0}, {t0}, #{imm}");
    let _ = writeln!(s, "    strex {t1}, {t0}, [{addr_reg}]");
    let _ = writeln!(s, "    cmp   {t1}, #0");
    let _ = writeln!(s, "    bne   {label}_retry");
    s
}

/// Emits a sense-reversing barrier. `count_reg` holds the address of the
/// arrival counter; the sense word lives at `[count_reg, #4]`; the local
/// sense is kept in `sense_reg` (caller must initialize it to 0 once).
/// `nthreads_reg` holds the participant count. Clobbers `t0`/`t1`.
pub fn barrier(
    label: &str,
    count_reg: &str,
    nthreads_reg: &str,
    sense_reg: &str,
    t0: &str,
    t1: &str,
) -> String {
    let mut s = String::new();
    // Flip local sense first: we wait for the *new* sense.
    let _ = writeln!(s, "    eor   {sense_reg}, {sense_reg}, #1");
    // Atomically bump the arrival counter; t0 = my arrival number.
    let _ = writeln!(s, "{label}_arrive:");
    let _ = writeln!(s, "    ldrex {t0}, [{count_reg}]");
    let _ = writeln!(s, "    add   {t0}, {t0}, #1");
    let _ = writeln!(s, "    strex {t1}, {t0}, [{count_reg}]");
    let _ = writeln!(s, "    cmp   {t1}, #0");
    let _ = writeln!(s, "    bne   {label}_arrive");
    let _ = writeln!(s, "    cmp   {t0}, {nthreads_reg}");
    let _ = writeln!(s, "    bne   {label}_spin");
    // Last arrival: reset the counter, publish the new sense.
    let _ = writeln!(s, "    mov   {t0}, #0");
    let _ = writeln!(s, "    str   {t0}, [{count_reg}]");
    let _ = writeln!(s, "    str   {sense_reg}, [{count_reg}, #4]");
    let _ = writeln!(s, "    b     {label}_out");
    let _ = writeln!(s, "{label}_spin:");
    let _ = writeln!(s, "    ldr   {t0}, [{count_reg}, #4]");
    let _ = writeln!(s, "    cmp   {t0}, {sense_reg}");
    let _ = writeln!(s, "    beq   {label}_out");
    let _ = writeln!(s, "    yield");
    let _ = writeln!(s, "    b     {label}_spin");
    let _ = writeln!(s, "{label}_out:");
    let _ = writeln!(s, "    dmb");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use adbt_isa::asm::assemble;

    /// Every fragment must assemble standalone (wrapped in a trivial
    /// program) — catches label and operand-syntax regressions.
    #[test]
    fn fragments_assemble() {
        let program = format!(
            r#"
            mov32 r5, lockword
            mov32 r7, barrierwords
            mov   r8, #1      ; nthreads
            mov   r9, #0      ; local sense
            {lock}
            {unlock}
            {add}
            {bar}
            mov r0, #0
            svc #0
        lockword:
            .word 0
        barrierwords:
            .word 0
            .word 0
        "#,
            lock = spin_lock("l0", "r5", "r1", "r2"),
            unlock = spin_unlock("r5", "r1"),
            add = atomic_add("a0", "r5", 1, "r1", "r2"),
            bar = barrier("b0", "r7", "r8", "r9", "r1", "r2"),
        );
        assemble(&program, 0x1000).unwrap_or_else(|e| panic!("fragment failed: {e}"));
    }

    #[test]
    fn rmw_ops_assemble_for_every_commutative_class() {
        for op in ["add", "eor", "orr", "and"] {
            let program = format!(
                "mov32 r5, w\n{}\nmov r0, #0\nsvc #0\nw: .word 0\n",
                atomic_rmw(&format!("rmw_{op}"), "r5", op, 3, "r1", "r2"),
            );
            assemble(&program, 0x1000).unwrap_or_else(|e| panic!("{op}: {e}"));
        }
    }

    #[test]
    fn labels_are_prefixed_uniquely() {
        let a = spin_lock("x1", "r5", "r1", "r2");
        let b = spin_lock("x2", "r5", "r1", "r2");
        let combined = format!("{a}{b}\nmov r0, #0\nsvc #0\n");
        assemble(&combined, 0).unwrap();
    }
}
