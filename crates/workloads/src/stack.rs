//! The lock-free stack micro-benchmark (paper §II-C, Fig. 2/3, §IV-A).
//!
//! N threads repeatedly pop a node and push it back. On a correct LL/SC
//! implementation the stack stays intact; under a value-comparing SC
//! (PICO-CAS) the classic ABA interleaving corrupts it:
//!
//! 1. T1 starts a pop: LL reads `top = A`, reads `A.next = B`.
//! 2. T2 pops `A`; T3 pops `B`; T2 pushes `A` back — `top` is `A` again.
//! 3. T1's SC value-compares `A == A`, succeeds, sets `top = B` — but
//!    `B` is in T3's hands. When T3 pushes `B`, it reads `top == B` and
//!    writes `B.next = B`: **a node pointing at itself**, the corruption
//!    witness the paper's artifact checks for.
//!
//! [`verify`] walks the final heap exactly the way the paper's checker
//! does, counting self-`next` entries, plus stronger structural checks
//! (cycles, off-pool pointers, lost nodes).

use std::fmt::Write as _;

/// Node size in bytes: `next` at offset 0, a node id at offset 4.
pub const NODE_SIZE: u32 = 8;

/// Parameters for the stack benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StackConfig {
    /// Number of nodes pre-linked onto the stack.
    pub nodes: u32,
    /// Pop+push pairs each thread performs.
    pub ops_per_thread: u32,
    /// Extra `nop`s between every pop's LL and SC (0 reproduces the
    /// paper's exact code shape; the ABA probability then matches the
    /// paper's — rare per op, certain over millions of ops).
    pub stall: u32,
    /// Delay-loop iterations (≈4 instructions each) inserted between LL
    /// and SC *for thread 1 only*. A single wide-window victim thread
    /// concentrates the ABA interleaving probability, letting tests
    /// demonstrate in thousands of ops what the paper's symmetric runs
    /// show over millions (it models a pop interrupted by preemption,
    /// exactly the paper's Fig. 2 narrative). 0 disables.
    pub victim_stall: u32,
}

impl Default for StackConfig {
    fn default() -> StackConfig {
        StackConfig {
            nodes: 64,
            ops_per_thread: 20_000,
            stall: 0,
            victim_stall: 0,
        }
    }
}

/// Symbol-free layout information the verifier needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StackLayout {
    /// Guest address of the `top` pointer.
    pub top: u32,
    /// Guest address of the first node.
    pub pool: u32,
    /// Number of nodes in the pool.
    pub nodes: u32,
}

/// A generated program plus its layout.
#[derive(Clone, Debug)]
pub struct StackProgram {
    /// Assembly source, ready for `assemble(source, base)`.
    pub source: String,
    /// Where `top` and the node pool will land for the given base.
    pub layout_symbols: (&'static str, &'static str),
    /// The configuration used.
    pub config: StackConfig,
}

/// Generates the benchmark program. Assemble it, then build a
/// [`StackLayout`] from the image's `stack_top` / `node_pool` symbols.
pub fn program(config: StackConfig) -> StackProgram {
    let mut s = String::new();
    let ops = config.ops_per_thread;
    let _ = writeln!(
        s,
        r#"
        mov32 r5, stack_top
        mov32 r6, #{ops}        ; remaining op pairs
        ; thread 1 is the wide-window "victim" (see StackConfig);
        ; r10 holds its per-pop delay count, 0 for everyone else.
        svc   #2                ; r0 = tid
        mov   r10, #0
        cmp   r0, #1
        bne   not_victim
        mov32 r10, #{victim}
    not_victim:
    main_loop:
        ; ---- pop ----
    pop_retry:
        ldrex r1, [r5]          ; r1 = old top
        cmp   r1, #0
        beq   pop_empty
        ldr   r2, [r1]          ; r2 = old_top->next"#,
        victim = config.victim_stall
    );
    for _ in 0..config.stall {
        let _ = writeln!(s, "        nop");
    }
    let _ = writeln!(
        s,
        r#"        ; victim delay loop (r10 = 0 for non-victims)
        mov   r4, r10
    victim_spin:
        cmp   r4, #0
        beq   victim_done
        sub   r4, r4, #1
        b     victim_spin
    victim_done:
        strex r3, r2, [r5]      ; top = next
        cmp   r3, #0
        bne   pop_retry
        ; r1 = popped node
        ; ---- push the same node back ----
    push_retry:
        ldrex r2, [r5]          ; r2 = old top
        str   r2, [r1]          ; node->next = old top
        strex r3, r1, [r5]      ; top = node
        cmp   r3, #0
        bne   push_retry
        subs  r6, r6, #1
        bne   main_loop
        mov   r0, #0
        svc   #0
    pop_empty:
        clrex
        yield
        b     pop_retry
"#
    );

    // Data: top pointer on its own page, then the pool.
    let _ = writeln!(s, "        .align 4096");
    let _ = writeln!(s, "stack_top:");
    let _ = writeln!(s, "        .word node_pool  ; initially points at node 0");
    let _ = writeln!(s, "        .align 64");
    let _ = writeln!(s, "node_pool:");
    for i in 0..config.nodes {
        if i + 1 < config.nodes {
            let _ = writeln!(s, "        .word node_pool+{}", (i + 1) * NODE_SIZE);
        } else {
            let _ = writeln!(s, "        .word 0");
        }
        let _ = writeln!(s, "        .word {i}  ; node id");
    }

    StackProgram {
        source: s,
        layout_symbols: ("stack_top", "node_pool"),
        config,
    }
}

/// The verifier's verdict on a finished run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StackVerdict {
    /// Nodes whose `next` points to themselves — the paper's ABA
    /// witness count.
    pub self_loops: u32,
    /// Nodes reachable from `top` before a cycle or corruption stops the
    /// walk.
    pub reachable: u32,
    /// Whether the walk hit a cycle (other than the self-loop case).
    pub cycle: bool,
    /// Whether any `next` (or `top`) pointed outside the pool.
    pub wild_pointer: bool,
    /// Nodes in the pool not reachable from `top` (lost to ABA).
    pub lost: u32,
}

impl StackVerdict {
    /// Whether the structure is exactly intact: every node reachable
    /// once, no loops, no wild pointers.
    pub fn is_intact(&self, expected_nodes: u32) -> bool {
        self.self_loops == 0
            && !self.cycle
            && !self.wild_pointer
            && self.reachable == expected_nodes
            && self.lost == 0
    }

    /// The paper's headline metric: the fraction of pool entries whose
    /// `next` points to themselves.
    pub fn aba_entry_fraction(&self, total_nodes: u32) -> f64 {
        self.self_loops as f64 / total_nodes as f64
    }
}

/// Verifies a finished run by reading guest memory through `read_word`.
///
/// All threads must have exited before calling this (every node should
/// be back on the stack).
pub fn verify(layout: &StackLayout, read_word: impl Fn(u32) -> u32) -> StackVerdict {
    let pool_end = layout.pool + layout.nodes * NODE_SIZE;
    let in_pool = |addr: u32| {
        addr >= layout.pool && addr < pool_end && (addr - layout.pool).is_multiple_of(NODE_SIZE)
    };
    let mut verdict = StackVerdict::default();

    // Paper-style witness scan: any node whose next is itself.
    for i in 0..layout.nodes {
        let node = layout.pool + i * NODE_SIZE;
        if read_word(node) == node {
            verdict.self_loops += 1;
        }
    }

    // Structural walk from top.
    let mut visited = vec![false; layout.nodes as usize];
    let mut cursor = read_word(layout.top);
    while cursor != 0 {
        if !in_pool(cursor) {
            verdict.wild_pointer = true;
            break;
        }
        let index = ((cursor - layout.pool) / NODE_SIZE) as usize;
        if visited[index] {
            verdict.cycle = true;
            break;
        }
        visited[index] = true;
        verdict.reachable += 1;
        cursor = read_word(cursor);
    }
    verdict.lost = visited.iter().filter(|&&v| !v).count() as u32;
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use adbt_isa::asm::assemble;
    use std::collections::HashMap;

    #[test]
    fn program_assembles_and_links_pool() {
        let prog = program(StackConfig {
            nodes: 4,
            ops_per_thread: 10,
            ..StackConfig::default()
        });
        let img = assemble(&prog.source, 0x1_0000).unwrap();
        let top = img.symbol("stack_top").unwrap();
        let pool = img.symbol("node_pool").unwrap();
        assert_eq!(top % 4096, 0);
        // top initially points at node 0; node 0 links node 1; last is 0.
        let word = |addr: u32| {
            let off = (addr - img.base) as usize;
            u32::from_le_bytes(img.bytes[off..off + 4].try_into().unwrap())
        };
        assert_eq!(word(top), pool);
        assert_eq!(word(pool), pool + NODE_SIZE);
        assert_eq!(word(pool + 3 * NODE_SIZE), 0);
    }

    fn mem_from(pairs: &[(u32, u32)]) -> impl Fn(u32) -> u32 + '_ {
        let map: HashMap<u32, u32> = pairs.iter().copied().collect();
        move |addr| *map.get(&addr).unwrap_or(&0)
    }

    #[test]
    fn verify_intact_chain() {
        let layout = StackLayout {
            top: 0x100,
            pool: 0x200,
            nodes: 3,
        };
        let mem = [(0x100, 0x200), (0x200, 0x208), (0x208, 0x210), (0x210, 0)];
        let verdict = verify(&layout, mem_from(&mem));
        assert!(verdict.is_intact(3), "{verdict:?}");
    }

    #[test]
    fn verify_detects_self_loop() {
        let layout = StackLayout {
            top: 0x100,
            pool: 0x200,
            nodes: 2,
        };
        // Node 0 points at itself: the ABA witness.
        let mem = [(0x100, 0x200), (0x200, 0x200), (0x208, 0)];
        let verdict = verify(&layout, mem_from(&mem));
        assert_eq!(verdict.self_loops, 1);
        assert!(verdict.cycle);
        assert!(!verdict.is_intact(2));
        assert!(verdict.aba_entry_fraction(2) > 0.4);
    }

    #[test]
    fn verify_detects_lost_nodes_and_wild_pointers() {
        let layout = StackLayout {
            top: 0x100,
            pool: 0x200,
            nodes: 3,
        };
        // top chain covers only node 0; node 1 next is wild.
        let mem = [(0x100, 0x200), (0x200, 0), (0x208, 0xdead_0000), (0x210, 0)];
        let verdict = verify(&layout, mem_from(&mem));
        assert_eq!(verdict.reachable, 1);
        assert_eq!(verdict.lost, 2);
        assert!(!verdict.wild_pointer, "wild only counts on the walk");
        assert!(!verdict.is_intact(3));

        let mem = [(0x100, 0xdead_0000)];
        let verdict = verify(&layout, mem_from(&mem));
        assert!(verdict.wild_pointer);
    }
}
