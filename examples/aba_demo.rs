//! The paper's motivating demonstration (§I, §II-C): a lock-free stack
//! that is correct on real ARM hardware corrupts within seconds under
//! QEMU's PICO-CAS emulation — and stays intact under HST.
//!
//! The corruption witness is the one the paper's artifact checks for: a
//! node whose `next` pointer points to itself.
//!
//! ```text
//! cargo run --release --example aba_demo
//! ```

use adbt::harness::{run_stack_sim, StackRun};
use adbt::workloads::stack::StackConfig;
use adbt::SchemeKind;

fn describe(kind: SchemeKind, run: &StackRun) {
    let verdict = &run.verdict;
    println!("--- {kind} ---");
    println!("  threads exited ok : {}", run.report.all_ok());
    println!("  SC failures       : {}", run.report.stats.sc_failures);
    println!(
        "  self-loop nodes   : {} ({:.1}% of pool)",
        verdict.self_loops,
        100.0 * verdict.aba_entry_fraction(run.nodes)
    );
    println!(
        "  reachable nodes   : {} / {}",
        verdict.reachable, run.nodes
    );
    println!("  lost nodes        : {}", verdict.lost);
    println!("  cycle on walk     : {}", verdict.cycle);
    if run.intact() {
        println!("  => stack intact — ABA prevented");
    } else {
        println!("  => STACK CORRUPTED — the ABA problem struck");
    }
    println!();
}

fn main() -> Result<(), adbt::Error> {
    let config = StackConfig {
        nodes: 8,
        ops_per_thread: 8_000,
        stall: 0,
        victim_stall: 0,
    };
    let threads = 16;

    println!(
        "lock-free stack: {} threads × {} pop/push pairs, {} nodes\n\
         (simulated multicore: fine-grained deterministic interleaving)\n",
        threads, config.ops_per_thread, config.nodes
    );

    // QEMU-4.1's scheme: value-comparing CAS. The paper's Figure 2
    // interleaving (pop A / pop B / push A under a stalled pop) makes
    // the SC succeed on a stale top-of-stack.
    let pico_cas = run_stack_sim(SchemeKind::PicoCas, threads, config)?;
    describe(SchemeKind::PicoCas, &pico_cas);

    // The paper's HST: same workload, strong atomicity, stack intact.
    let hst = run_stack_sim(SchemeKind::Hst, threads, config)?;
    describe(SchemeKind::Hst, &hst);

    if !pico_cas.intact() && hst.intact() {
        println!("reproduced the paper's result: PICO-CAS corrupts, HST does not.");
    } else if pico_cas.intact() {
        println!(
            "note: PICO-CAS survived this run — the ABA window is probabilistic; \
             rerun or raise ops_per_thread."
        );
    }
    Ok(())
}
