//! The §IV-A atomicity analysis, executed: run the four ABA sequences
//! (Seq1–Seq4) under every scheme in deterministic lockstep and print
//! which SCs correctly fail.
//!
//! ```text
//! cargo run --release --example litmus_matrix
//! ```

use adbt::harness::{expected_behaviour, run_litmus};
use adbt::workloads::litmus::{Expectation, Seq};
use adbt::SchemeKind;

fn main() -> Result<(), adbt::Error> {
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8}   verdict",
        "scheme", "Seq1", "Seq2", "Seq3", "Seq4"
    );
    for kind in SchemeKind::ALL {
        let mut cells = Vec::new();
        let mut all_conform = true;
        for seq in Seq::ALL {
            let run = run_litmus(kind, seq)?;
            all_conform &= run.conforms;
            let cell = match (expected_behaviour(kind, seq), run.sc_status) {
                (Expectation::RegionRetries, 0) => "retry",
                (_, 1) => "fails",
                (_, 0) => "SUCCEEDS",
                _ => "?",
            };
            cells.push(cell.to_string());
        }
        let verdict = match kind {
            SchemeKind::PicoCas => "incorrect (ABA-prone, as shipped in QEMU-4.1)",
            SchemeKind::HstWeak => "weak atomicity (misses plain-store-only Seq1)",
            SchemeKind::PicoHtm => "strong via region transactions (aborts + retries)",
            _ => "strong atomicity",
        };
        println!(
            "{:<10} {:>8} {:>8} {:>8} {:>8}   {}{}",
            kind.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            verdict,
            if all_conform {
                ""
            } else {
                " [UNEXPECTED BEHAVIOUR]"
            }
        );
    }
    println!(
        "\n`fails`    = the SC correctly detects the interference and fails\n\
         `SUCCEEDS` = the SC wrongly succeeds (the ABA hazard)\n\
         `retry`    = the LL→SC region aborted and re-executed (HTM semantics)"
    );
    Ok(())
}
