//! Quickstart: build a machine, run a multi-threaded guest program that
//! hammers an LL/SC counter, and inspect the run report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use adbt::{MachineBuilder, SchemeKind};

fn main() -> Result<(), adbt::Error> {
    // Pick a scheme: HST is the paper's headline contribution —
    // strongly atomic, portable, and fast.
    let mut machine = MachineBuilder::new(SchemeKind::Hst).build()?;

    // Guest programs are written in the ARM-like guest assembly. Each
    // vCPU starts with r0 = thread index and r1 = thread count.
    machine.load_asm(
        r#"
            mov32 r5, counter
            mov32 r6, #10000        ; increments per thread
        loop:
        retry:
            ldrex r1, [r5]          ; load-link
            add   r1, r1, #1
            strex r2, r1, [r5]      ; store-conditional
            cmp   r2, #0
            bne   retry             ; lost the race: try again
            subs  r6, r6, #1
            bne   loop
            mov   r0, #0
            svc   #0                ; exit(r0)

            .align 4096
        counter:
            .word 0
        "#,
        0x1_0000,
    )?;

    let threads = 8;
    let report = machine.run(threads, 0x1_0000);

    let counter = machine.symbol("counter")?;
    println!("scheme           : {}", machine.scheme());
    println!("threads          : {threads}");
    println!("all exited ok    : {}", report.all_ok());
    println!("counter          : {}", machine.read_word(counter)?);
    println!("guest insns      : {}", report.stats.insns);
    println!("LL executed      : {}", report.stats.ll);
    println!("SC executed      : {}", report.stats.sc);
    println!("SC failures      : {}", report.stats.sc_failures);
    println!("htable sets      : {}", report.stats.htable_sets);
    println!("exclusive entries: {}", report.stats.exclusive_entries);
    println!("wall time        : {:?}", report.wall);

    assert!(report.all_ok());
    assert_eq!(machine.read_word(counter)?, threads * 10_000);
    println!("\ncounter is exact: LL/SC emulation preserved atomicity ✓");
    Ok(())
}
