//! A tour of all eight atomic-emulation schemes on one PARSEC-like
//! kernel: run each, check the kernel's invariants, and print a
//! side-by-side comparison of cost signatures (the qualitative content
//! of the paper's Table II, measured).
//!
//! ```text
//! cargo run --release --example scheme_tour [program] [threads]
//! ```

use adbt::harness::run_parsec_sim;
use adbt::workloads::parsec::Program;
use adbt::SchemeKind;

fn main() -> Result<(), adbt::Error> {
    let mut args = std::env::args().skip(1);
    let program = args
        .next()
        .and_then(|name| Program::from_name(&name))
        .unwrap_or(Program::Fluidanimate);
    let threads: u32 = args.next().and_then(|t| t.parse().ok()).unwrap_or(4);
    let scale = 0.25;

    println!("kernel {program}, {threads} threads, scale {scale} (simulated multicore)\n");
    println!(
        "{:<10} {:>10} {:>6} {:>10} {:>9} {:>9} {:>9} {:>8} {:>9}",
        "scheme", "sim_time", "ok", "helpers", "htable", "excl", "mprot", "htm-ab", "sc-fail"
    );

    for kind in SchemeKind::ALL {
        let run = run_parsec_sim(kind, program, threads, scale)?;
        let stats = &run.report.stats;
        println!(
            "{:<10} {:>10} {:>6} {:>10} {:>9} {:>9} {:>9} {:>8} {:>9}",
            kind.name(),
            run.sim_time().unwrap_or(0),
            if run.valid { "yes" } else { "NO" },
            stats.helper_calls,
            stats.htable_sets,
            stats.exclusive_entries,
            stats.mprotect_calls + stats.remap_calls,
            stats.htm_aborts,
            stats.sc_failures,
        );
    }

    println!(
        "\ncolumns: helper dispatches, inline hash-table sets, stop-the-world \
         sections, page protect/remap calls, HTM aborts, failed SCs."
    );
    println!("every scheme must print ok=yes; they differ only in cost.");
    Ok(())
}
