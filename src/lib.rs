//! Umbrella package: see `adbt` for the public API. Holds the workspace-wide integration tests and examples.
pub use adbt as api;
