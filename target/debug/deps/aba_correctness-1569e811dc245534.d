/root/repo/target/debug/deps/aba_correctness-1569e811dc245534.d: crates/bench/src/bin/aba_correctness.rs

/root/repo/target/debug/deps/aba_correctness-1569e811dc245534: crates/bench/src/bin/aba_correctness.rs

crates/bench/src/bin/aba_correctness.rs:
