/root/repo/target/debug/deps/aba_correctness-2a950080e272750a.d: crates/bench/src/bin/aba_correctness.rs

/root/repo/target/debug/deps/aba_correctness-2a950080e272750a: crates/bench/src/bin/aba_correctness.rs

crates/bench/src/bin/aba_correctness.rs:
