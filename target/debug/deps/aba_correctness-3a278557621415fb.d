/root/repo/target/debug/deps/aba_correctness-3a278557621415fb.d: crates/bench/src/bin/aba_correctness.rs Cargo.toml

/root/repo/target/debug/deps/libaba_correctness-3a278557621415fb.rmeta: crates/bench/src/bin/aba_correctness.rs Cargo.toml

crates/bench/src/bin/aba_correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
