/root/repo/target/debug/deps/aba_correctness-537332c42ab365e2.d: crates/bench/src/bin/aba_correctness.rs Cargo.toml

/root/repo/target/debug/deps/libaba_correctness-537332c42ab365e2.rmeta: crates/bench/src/bin/aba_correctness.rs Cargo.toml

crates/bench/src/bin/aba_correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
