/root/repo/target/debug/deps/aba_correctness-60b0b151d2c8b0a9.d: crates/bench/src/bin/aba_correctness.rs

/root/repo/target/debug/deps/aba_correctness-60b0b151d2c8b0a9: crates/bench/src/bin/aba_correctness.rs

crates/bench/src/bin/aba_correctness.rs:
