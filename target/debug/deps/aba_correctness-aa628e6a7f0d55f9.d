/root/repo/target/debug/deps/aba_correctness-aa628e6a7f0d55f9.d: crates/bench/src/bin/aba_correctness.rs

/root/repo/target/debug/deps/aba_correctness-aa628e6a7f0d55f9: crates/bench/src/bin/aba_correctness.rs

crates/bench/src/bin/aba_correctness.rs:
