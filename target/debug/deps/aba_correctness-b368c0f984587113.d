/root/repo/target/debug/deps/aba_correctness-b368c0f984587113.d: crates/bench/src/bin/aba_correctness.rs

/root/repo/target/debug/deps/aba_correctness-b368c0f984587113: crates/bench/src/bin/aba_correctness.rs

crates/bench/src/bin/aba_correctness.rs:
