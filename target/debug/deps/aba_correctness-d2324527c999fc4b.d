/root/repo/target/debug/deps/aba_correctness-d2324527c999fc4b.d: crates/bench/src/bin/aba_correctness.rs

/root/repo/target/debug/deps/aba_correctness-d2324527c999fc4b: crates/bench/src/bin/aba_correctness.rs

crates/bench/src/bin/aba_correctness.rs:
