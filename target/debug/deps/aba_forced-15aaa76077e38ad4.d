/root/repo/target/debug/deps/aba_forced-15aaa76077e38ad4.d: tests/aba_forced.rs

/root/repo/target/debug/deps/aba_forced-15aaa76077e38ad4: tests/aba_forced.rs

tests/aba_forced.rs:
