/root/repo/target/debug/deps/aba_forced-7325ab18c9e28a32.d: tests/aba_forced.rs Cargo.toml

/root/repo/target/debug/deps/libaba_forced-7325ab18c9e28a32.rmeta: tests/aba_forced.rs Cargo.toml

tests/aba_forced.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
