/root/repo/target/debug/deps/aba_forced-7440d81f0a98f35b.d: tests/aba_forced.rs

/root/repo/target/debug/deps/aba_forced-7440d81f0a98f35b: tests/aba_forced.rs

tests/aba_forced.rs:
