/root/repo/target/debug/deps/aba_forced-de9efbdf43b988fe.d: tests/aba_forced.rs

/root/repo/target/debug/deps/aba_forced-de9efbdf43b988fe: tests/aba_forced.rs

tests/aba_forced.rs:
