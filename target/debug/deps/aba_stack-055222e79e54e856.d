/root/repo/target/debug/deps/aba_stack-055222e79e54e856.d: tests/aba_stack.rs

/root/repo/target/debug/deps/aba_stack-055222e79e54e856: tests/aba_stack.rs

tests/aba_stack.rs:
