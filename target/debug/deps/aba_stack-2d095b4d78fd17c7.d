/root/repo/target/debug/deps/aba_stack-2d095b4d78fd17c7.d: tests/aba_stack.rs Cargo.toml

/root/repo/target/debug/deps/libaba_stack-2d095b4d78fd17c7.rmeta: tests/aba_stack.rs Cargo.toml

tests/aba_stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
