/root/repo/target/debug/deps/aba_stack-6a0fcd1fad6889fa.d: tests/aba_stack.rs Cargo.toml

/root/repo/target/debug/deps/libaba_stack-6a0fcd1fad6889fa.rmeta: tests/aba_stack.rs Cargo.toml

tests/aba_stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
