/root/repo/target/debug/deps/aba_stack-809f04cd06121092.d: tests/aba_stack.rs

/root/repo/target/debug/deps/aba_stack-809f04cd06121092: tests/aba_stack.rs

tests/aba_stack.rs:
