/root/repo/target/debug/deps/aba_stack-f1cc9a448adc0163.d: tests/aba_stack.rs

/root/repo/target/debug/deps/aba_stack-f1cc9a448adc0163: tests/aba_stack.rs

tests/aba_stack.rs:
