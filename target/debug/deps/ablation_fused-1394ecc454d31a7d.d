/root/repo/target/debug/deps/ablation_fused-1394ecc454d31a7d.d: crates/bench/src/bin/ablation_fused.rs

/root/repo/target/debug/deps/ablation_fused-1394ecc454d31a7d: crates/bench/src/bin/ablation_fused.rs

crates/bench/src/bin/ablation_fused.rs:
