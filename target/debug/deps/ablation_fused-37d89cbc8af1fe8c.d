/root/repo/target/debug/deps/ablation_fused-37d89cbc8af1fe8c.d: crates/bench/src/bin/ablation_fused.rs

/root/repo/target/debug/deps/ablation_fused-37d89cbc8af1fe8c: crates/bench/src/bin/ablation_fused.rs

crates/bench/src/bin/ablation_fused.rs:
