/root/repo/target/debug/deps/ablation_fused-3e5f80cbaaa292f6.d: crates/bench/src/bin/ablation_fused.rs

/root/repo/target/debug/deps/ablation_fused-3e5f80cbaaa292f6: crates/bench/src/bin/ablation_fused.rs

crates/bench/src/bin/ablation_fused.rs:
