/root/repo/target/debug/deps/ablation_fused-58175d45466fde68.d: crates/bench/src/bin/ablation_fused.rs

/root/repo/target/debug/deps/ablation_fused-58175d45466fde68: crates/bench/src/bin/ablation_fused.rs

crates/bench/src/bin/ablation_fused.rs:
