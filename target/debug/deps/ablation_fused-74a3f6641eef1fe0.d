/root/repo/target/debug/deps/ablation_fused-74a3f6641eef1fe0.d: crates/bench/src/bin/ablation_fused.rs

/root/repo/target/debug/deps/ablation_fused-74a3f6641eef1fe0: crates/bench/src/bin/ablation_fused.rs

crates/bench/src/bin/ablation_fused.rs:
