/root/repo/target/debug/deps/ablation_fused-b111451a93b36457.d: crates/bench/src/bin/ablation_fused.rs

/root/repo/target/debug/deps/ablation_fused-b111451a93b36457: crates/bench/src/bin/ablation_fused.rs

crates/bench/src/bin/ablation_fused.rs:
