/root/repo/target/debug/deps/ablation_fused-cdfb21e1cd4327f4.d: crates/bench/src/bin/ablation_fused.rs Cargo.toml

/root/repo/target/debug/deps/libablation_fused-cdfb21e1cd4327f4.rmeta: crates/bench/src/bin/ablation_fused.rs Cargo.toml

crates/bench/src/bin/ablation_fused.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
