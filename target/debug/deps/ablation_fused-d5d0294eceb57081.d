/root/repo/target/debug/deps/ablation_fused-d5d0294eceb57081.d: crates/bench/src/bin/ablation_fused.rs Cargo.toml

/root/repo/target/debug/deps/libablation_fused-d5d0294eceb57081.rmeta: crates/bench/src/bin/ablation_fused.rs Cargo.toml

crates/bench/src/bin/ablation_fused.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
