/root/repo/target/debug/deps/adbt-0e1cce3b8abaae76.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs

/root/repo/target/debug/deps/libadbt-0e1cce3b8abaae76.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs

/root/repo/target/debug/deps/libadbt-0e1cce3b8abaae76.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/harness.rs:
crates/core/src/machine.rs:
