/root/repo/target/debug/deps/adbt-1fa5be4b30e22a6e.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs Cargo.toml

/root/repo/target/debug/deps/libadbt-1fa5be4b30e22a6e.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/harness.rs:
crates/core/src/machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
