/root/repo/target/debug/deps/adbt-384cfa8545ab867e.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs Cargo.toml

/root/repo/target/debug/deps/libadbt-384cfa8545ab867e.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/harness.rs:
crates/core/src/machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
