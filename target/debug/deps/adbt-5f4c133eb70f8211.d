/root/repo/target/debug/deps/adbt-5f4c133eb70f8211.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs

/root/repo/target/debug/deps/adbt-5f4c133eb70f8211: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/harness.rs:
crates/core/src/machine.rs:
