/root/repo/target/debug/deps/adbt-99e25466487e8139.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs

/root/repo/target/debug/deps/adbt-99e25466487e8139: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/harness.rs:
crates/core/src/machine.rs:
