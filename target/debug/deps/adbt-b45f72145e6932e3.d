/root/repo/target/debug/deps/adbt-b45f72145e6932e3.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs Cargo.toml

/root/repo/target/debug/deps/libadbt-b45f72145e6932e3.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/harness.rs:
crates/core/src/machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
