/root/repo/target/debug/deps/adbt-c9ac59a304e85c57.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs Cargo.toml

/root/repo/target/debug/deps/libadbt-c9ac59a304e85c57.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/harness.rs:
crates/core/src/machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
