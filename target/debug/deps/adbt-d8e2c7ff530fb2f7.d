/root/repo/target/debug/deps/adbt-d8e2c7ff530fb2f7.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs

/root/repo/target/debug/deps/adbt-d8e2c7ff530fb2f7: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/harness.rs:
crates/core/src/machine.rs:
