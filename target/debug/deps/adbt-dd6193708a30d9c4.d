/root/repo/target/debug/deps/adbt-dd6193708a30d9c4.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs

/root/repo/target/debug/deps/libadbt-dd6193708a30d9c4.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs

/root/repo/target/debug/deps/libadbt-dd6193708a30d9c4.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/harness.rs:
crates/core/src/machine.rs:
