/root/repo/target/debug/deps/adbt-f4db590a7058c37e.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs

/root/repo/target/debug/deps/libadbt-f4db590a7058c37e.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs

/root/repo/target/debug/deps/libadbt-f4db590a7058c37e.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/harness.rs:
crates/core/src/machine.rs:
