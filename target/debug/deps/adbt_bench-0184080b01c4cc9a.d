/root/repo/target/debug/deps/adbt_bench-0184080b01c4cc9a.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_bench-0184080b01c4cc9a.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
