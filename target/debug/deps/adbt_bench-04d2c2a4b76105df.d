/root/repo/target/debug/deps/adbt_bench-04d2c2a4b76105df.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/adbt_bench-04d2c2a4b76105df: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
