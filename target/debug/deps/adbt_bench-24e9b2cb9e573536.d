/root/repo/target/debug/deps/adbt_bench-24e9b2cb9e573536.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_bench-24e9b2cb9e573536.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
