/root/repo/target/debug/deps/adbt_bench-4cdd24433335d887.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libadbt_bench-4cdd24433335d887.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libadbt_bench-4cdd24433335d887.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
