/root/repo/target/debug/deps/adbt_bench-8807d7df7c1228a5.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/adbt_bench-8807d7df7c1228a5: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
