/root/repo/target/debug/deps/adbt_bench-8b7bb8fb26a8f7e7.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libadbt_bench-8b7bb8fb26a8f7e7.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libadbt_bench-8b7bb8fb26a8f7e7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
