/root/repo/target/debug/deps/adbt_bench-8ed27a923a237559.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libadbt_bench-8ed27a923a237559.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libadbt_bench-8ed27a923a237559.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
