/root/repo/target/debug/deps/adbt_bench-e1d51bb41b1223e4.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/adbt_bench-e1d51bb41b1223e4: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
