/root/repo/target/debug/deps/adbt_chaos-0df4af994d7152b5.d: crates/chaos/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_chaos-0df4af994d7152b5.rmeta: crates/chaos/src/lib.rs Cargo.toml

crates/chaos/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
