/root/repo/target/debug/deps/adbt_chaos-3f021d04bcaaf296.d: crates/chaos/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_chaos-3f021d04bcaaf296.rmeta: crates/chaos/src/lib.rs Cargo.toml

crates/chaos/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
