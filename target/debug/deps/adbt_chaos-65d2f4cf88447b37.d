/root/repo/target/debug/deps/adbt_chaos-65d2f4cf88447b37.d: crates/chaos/src/lib.rs

/root/repo/target/debug/deps/libadbt_chaos-65d2f4cf88447b37.rlib: crates/chaos/src/lib.rs

/root/repo/target/debug/deps/libadbt_chaos-65d2f4cf88447b37.rmeta: crates/chaos/src/lib.rs

crates/chaos/src/lib.rs:
