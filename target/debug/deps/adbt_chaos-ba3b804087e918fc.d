/root/repo/target/debug/deps/adbt_chaos-ba3b804087e918fc.d: crates/chaos/src/lib.rs

/root/repo/target/debug/deps/adbt_chaos-ba3b804087e918fc: crates/chaos/src/lib.rs

crates/chaos/src/lib.rs:
