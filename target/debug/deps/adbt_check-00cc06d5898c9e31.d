/root/repo/target/debug/deps/adbt_check-00cc06d5898c9e31.d: crates/check/src/bin/adbt_check.rs

/root/repo/target/debug/deps/adbt_check-00cc06d5898c9e31: crates/check/src/bin/adbt_check.rs

crates/check/src/bin/adbt_check.rs:
