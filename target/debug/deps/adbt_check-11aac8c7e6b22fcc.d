/root/repo/target/debug/deps/adbt_check-11aac8c7e6b22fcc.d: crates/check/src/lib.rs crates/check/src/explore.rs crates/check/src/oracle.rs

/root/repo/target/debug/deps/libadbt_check-11aac8c7e6b22fcc.rlib: crates/check/src/lib.rs crates/check/src/explore.rs crates/check/src/oracle.rs

/root/repo/target/debug/deps/libadbt_check-11aac8c7e6b22fcc.rmeta: crates/check/src/lib.rs crates/check/src/explore.rs crates/check/src/oracle.rs

crates/check/src/lib.rs:
crates/check/src/explore.rs:
crates/check/src/oracle.rs:
