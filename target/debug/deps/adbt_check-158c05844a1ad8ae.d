/root/repo/target/debug/deps/adbt_check-158c05844a1ad8ae.d: crates/check/src/lib.rs crates/check/src/explore.rs crates/check/src/export.rs crates/check/src/oracle.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_check-158c05844a1ad8ae.rmeta: crates/check/src/lib.rs crates/check/src/explore.rs crates/check/src/export.rs crates/check/src/oracle.rs Cargo.toml

crates/check/src/lib.rs:
crates/check/src/explore.rs:
crates/check/src/export.rs:
crates/check/src/oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
