/root/repo/target/debug/deps/adbt_check-3537aa6e7d307917.d: crates/check/src/lib.rs crates/check/src/explore.rs crates/check/src/oracle.rs

/root/repo/target/debug/deps/adbt_check-3537aa6e7d307917: crates/check/src/lib.rs crates/check/src/explore.rs crates/check/src/oracle.rs

crates/check/src/lib.rs:
crates/check/src/explore.rs:
crates/check/src/oracle.rs:
