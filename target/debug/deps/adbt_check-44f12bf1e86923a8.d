/root/repo/target/debug/deps/adbt_check-44f12bf1e86923a8.d: crates/check/src/lib.rs crates/check/src/explore.rs crates/check/src/export.rs crates/check/src/oracle.rs

/root/repo/target/debug/deps/adbt_check-44f12bf1e86923a8: crates/check/src/lib.rs crates/check/src/explore.rs crates/check/src/export.rs crates/check/src/oracle.rs

crates/check/src/lib.rs:
crates/check/src/explore.rs:
crates/check/src/export.rs:
crates/check/src/oracle.rs:
