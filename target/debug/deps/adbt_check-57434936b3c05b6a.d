/root/repo/target/debug/deps/adbt_check-57434936b3c05b6a.d: crates/check/src/lib.rs crates/check/src/explore.rs crates/check/src/export.rs crates/check/src/oracle.rs

/root/repo/target/debug/deps/libadbt_check-57434936b3c05b6a.rlib: crates/check/src/lib.rs crates/check/src/explore.rs crates/check/src/export.rs crates/check/src/oracle.rs

/root/repo/target/debug/deps/libadbt_check-57434936b3c05b6a.rmeta: crates/check/src/lib.rs crates/check/src/explore.rs crates/check/src/export.rs crates/check/src/oracle.rs

crates/check/src/lib.rs:
crates/check/src/explore.rs:
crates/check/src/export.rs:
crates/check/src/oracle.rs:
