/root/repo/target/debug/deps/adbt_check-59914854bba0eb5b.d: crates/check/src/bin/adbt_check.rs

/root/repo/target/debug/deps/adbt_check-59914854bba0eb5b: crates/check/src/bin/adbt_check.rs

crates/check/src/bin/adbt_check.rs:
