/root/repo/target/debug/deps/adbt_check-5e088b33aa284734.d: crates/check/src/bin/adbt_check.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_check-5e088b33aa284734.rmeta: crates/check/src/bin/adbt_check.rs Cargo.toml

crates/check/src/bin/adbt_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
