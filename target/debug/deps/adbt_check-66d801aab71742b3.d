/root/repo/target/debug/deps/adbt_check-66d801aab71742b3.d: crates/check/src/bin/adbt_check.rs

/root/repo/target/debug/deps/adbt_check-66d801aab71742b3: crates/check/src/bin/adbt_check.rs

crates/check/src/bin/adbt_check.rs:
