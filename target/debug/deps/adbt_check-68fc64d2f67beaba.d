/root/repo/target/debug/deps/adbt_check-68fc64d2f67beaba.d: crates/check/src/bin/adbt_check.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_check-68fc64d2f67beaba.rmeta: crates/check/src/bin/adbt_check.rs Cargo.toml

crates/check/src/bin/adbt_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
