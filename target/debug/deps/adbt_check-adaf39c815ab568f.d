/root/repo/target/debug/deps/adbt_check-adaf39c815ab568f.d: crates/check/src/lib.rs crates/check/src/explore.rs crates/check/src/export.rs crates/check/src/oracle.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_check-adaf39c815ab568f.rmeta: crates/check/src/lib.rs crates/check/src/explore.rs crates/check/src/export.rs crates/check/src/oracle.rs Cargo.toml

crates/check/src/lib.rs:
crates/check/src/explore.rs:
crates/check/src/export.rs:
crates/check/src/oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
