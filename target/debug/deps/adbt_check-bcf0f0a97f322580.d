/root/repo/target/debug/deps/adbt_check-bcf0f0a97f322580.d: crates/check/src/bin/adbt_check.rs

/root/repo/target/debug/deps/adbt_check-bcf0f0a97f322580: crates/check/src/bin/adbt_check.rs

crates/check/src/bin/adbt_check.rs:
