/root/repo/target/debug/deps/adbt_engine-a21e1ffd82a53a2d.d: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/exclusive.rs crates/engine/src/frontend.rs crates/engine/src/interp.rs crates/engine/src/machine.rs crates/engine/src/runtime.rs crates/engine/src/sched.rs crates/engine/src/scheme.rs crates/engine/src/state.rs crates/engine/src/stats.rs crates/engine/src/store_test.rs crates/engine/src/watchdog.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_engine-a21e1ffd82a53a2d.rmeta: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/exclusive.rs crates/engine/src/frontend.rs crates/engine/src/interp.rs crates/engine/src/machine.rs crates/engine/src/runtime.rs crates/engine/src/sched.rs crates/engine/src/scheme.rs crates/engine/src/state.rs crates/engine/src/stats.rs crates/engine/src/store_test.rs crates/engine/src/watchdog.rs Cargo.toml

crates/engine/src/lib.rs:
crates/engine/src/cache.rs:
crates/engine/src/exclusive.rs:
crates/engine/src/frontend.rs:
crates/engine/src/interp.rs:
crates/engine/src/machine.rs:
crates/engine/src/runtime.rs:
crates/engine/src/sched.rs:
crates/engine/src/scheme.rs:
crates/engine/src/state.rs:
crates/engine/src/stats.rs:
crates/engine/src/store_test.rs:
crates/engine/src/watchdog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
