/root/repo/target/debug/deps/adbt_engine-abc097722f2e713c.d: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/exclusive.rs crates/engine/src/frontend.rs crates/engine/src/interp.rs crates/engine/src/machine.rs crates/engine/src/runtime.rs crates/engine/src/sched.rs crates/engine/src/scheme.rs crates/engine/src/state.rs crates/engine/src/stats.rs crates/engine/src/store_test.rs crates/engine/src/watchdog.rs

/root/repo/target/debug/deps/libadbt_engine-abc097722f2e713c.rlib: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/exclusive.rs crates/engine/src/frontend.rs crates/engine/src/interp.rs crates/engine/src/machine.rs crates/engine/src/runtime.rs crates/engine/src/sched.rs crates/engine/src/scheme.rs crates/engine/src/state.rs crates/engine/src/stats.rs crates/engine/src/store_test.rs crates/engine/src/watchdog.rs

/root/repo/target/debug/deps/libadbt_engine-abc097722f2e713c.rmeta: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/exclusive.rs crates/engine/src/frontend.rs crates/engine/src/interp.rs crates/engine/src/machine.rs crates/engine/src/runtime.rs crates/engine/src/sched.rs crates/engine/src/scheme.rs crates/engine/src/state.rs crates/engine/src/stats.rs crates/engine/src/store_test.rs crates/engine/src/watchdog.rs

crates/engine/src/lib.rs:
crates/engine/src/cache.rs:
crates/engine/src/exclusive.rs:
crates/engine/src/frontend.rs:
crates/engine/src/interp.rs:
crates/engine/src/machine.rs:
crates/engine/src/runtime.rs:
crates/engine/src/sched.rs:
crates/engine/src/scheme.rs:
crates/engine/src/state.rs:
crates/engine/src/stats.rs:
crates/engine/src/store_test.rs:
crates/engine/src/watchdog.rs:
