/root/repo/target/debug/deps/adbt_htm-2be17d99c5977567.d: crates/htm/src/lib.rs crates/htm/src/domain.rs crates/htm/src/txn.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_htm-2be17d99c5977567.rmeta: crates/htm/src/lib.rs crates/htm/src/domain.rs crates/htm/src/txn.rs Cargo.toml

crates/htm/src/lib.rs:
crates/htm/src/domain.rs:
crates/htm/src/txn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
