/root/repo/target/debug/deps/adbt_htm-da82c6c0ca86dd4b.d: crates/htm/src/lib.rs crates/htm/src/domain.rs crates/htm/src/txn.rs

/root/repo/target/debug/deps/libadbt_htm-da82c6c0ca86dd4b.rlib: crates/htm/src/lib.rs crates/htm/src/domain.rs crates/htm/src/txn.rs

/root/repo/target/debug/deps/libadbt_htm-da82c6c0ca86dd4b.rmeta: crates/htm/src/lib.rs crates/htm/src/domain.rs crates/htm/src/txn.rs

crates/htm/src/lib.rs:
crates/htm/src/domain.rs:
crates/htm/src/txn.rs:
