/root/repo/target/debug/deps/adbt_htm-f6beb9700a9819d2.d: crates/htm/src/lib.rs crates/htm/src/domain.rs crates/htm/src/txn.rs

/root/repo/target/debug/deps/adbt_htm-f6beb9700a9819d2: crates/htm/src/lib.rs crates/htm/src/domain.rs crates/htm/src/txn.rs

crates/htm/src/lib.rs:
crates/htm/src/domain.rs:
crates/htm/src/txn.rs:
