/root/repo/target/debug/deps/adbt_ir-052bc5320bb9e158.d: crates/ir/src/lib.rs crates/ir/src/block.rs crates/ir/src/op.rs crates/ir/src/printer.rs

/root/repo/target/debug/deps/libadbt_ir-052bc5320bb9e158.rlib: crates/ir/src/lib.rs crates/ir/src/block.rs crates/ir/src/op.rs crates/ir/src/printer.rs

/root/repo/target/debug/deps/libadbt_ir-052bc5320bb9e158.rmeta: crates/ir/src/lib.rs crates/ir/src/block.rs crates/ir/src/op.rs crates/ir/src/printer.rs

crates/ir/src/lib.rs:
crates/ir/src/block.rs:
crates/ir/src/op.rs:
crates/ir/src/printer.rs:
