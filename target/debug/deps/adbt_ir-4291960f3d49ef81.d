/root/repo/target/debug/deps/adbt_ir-4291960f3d49ef81.d: crates/ir/src/lib.rs crates/ir/src/block.rs crates/ir/src/op.rs crates/ir/src/printer.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_ir-4291960f3d49ef81.rmeta: crates/ir/src/lib.rs crates/ir/src/block.rs crates/ir/src/op.rs crates/ir/src/printer.rs Cargo.toml

crates/ir/src/lib.rs:
crates/ir/src/block.rs:
crates/ir/src/op.rs:
crates/ir/src/printer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
