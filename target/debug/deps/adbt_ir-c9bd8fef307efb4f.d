/root/repo/target/debug/deps/adbt_ir-c9bd8fef307efb4f.d: crates/ir/src/lib.rs crates/ir/src/block.rs crates/ir/src/op.rs crates/ir/src/printer.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_ir-c9bd8fef307efb4f.rmeta: crates/ir/src/lib.rs crates/ir/src/block.rs crates/ir/src/op.rs crates/ir/src/printer.rs Cargo.toml

crates/ir/src/lib.rs:
crates/ir/src/block.rs:
crates/ir/src/op.rs:
crates/ir/src/printer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
