/root/repo/target/debug/deps/adbt_ir-f07c817b728266ac.d: crates/ir/src/lib.rs crates/ir/src/block.rs crates/ir/src/op.rs crates/ir/src/printer.rs

/root/repo/target/debug/deps/adbt_ir-f07c817b728266ac: crates/ir/src/lib.rs crates/ir/src/block.rs crates/ir/src/op.rs crates/ir/src/printer.rs

crates/ir/src/lib.rs:
crates/ir/src/block.rs:
crates/ir/src/op.rs:
crates/ir/src/printer.rs:
