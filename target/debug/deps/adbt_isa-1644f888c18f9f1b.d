/root/repo/target/debug/deps/adbt_isa-1644f888c18f9f1b.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/cond.rs crates/isa/src/decode.rs crates/isa/src/disasm_impl.rs crates/isa/src/encode.rs crates/isa/src/error.rs crates/isa/src/insn.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/libadbt_isa-1644f888c18f9f1b.rlib: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/cond.rs crates/isa/src/decode.rs crates/isa/src/disasm_impl.rs crates/isa/src/encode.rs crates/isa/src/error.rs crates/isa/src/insn.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/libadbt_isa-1644f888c18f9f1b.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/cond.rs crates/isa/src/decode.rs crates/isa/src/disasm_impl.rs crates/isa/src/encode.rs crates/isa/src/error.rs crates/isa/src/insn.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/cond.rs:
crates/isa/src/decode.rs:
crates/isa/src/disasm_impl.rs:
crates/isa/src/encode.rs:
crates/isa/src/error.rs:
crates/isa/src/insn.rs:
crates/isa/src/reg.rs:
