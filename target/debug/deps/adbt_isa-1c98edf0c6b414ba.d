/root/repo/target/debug/deps/adbt_isa-1c98edf0c6b414ba.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/cond.rs crates/isa/src/decode.rs crates/isa/src/disasm_impl.rs crates/isa/src/encode.rs crates/isa/src/error.rs crates/isa/src/insn.rs crates/isa/src/reg.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_isa-1c98edf0c6b414ba.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/cond.rs crates/isa/src/decode.rs crates/isa/src/disasm_impl.rs crates/isa/src/encode.rs crates/isa/src/error.rs crates/isa/src/insn.rs crates/isa/src/reg.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/cond.rs:
crates/isa/src/decode.rs:
crates/isa/src/disasm_impl.rs:
crates/isa/src/encode.rs:
crates/isa/src/error.rs:
crates/isa/src/insn.rs:
crates/isa/src/reg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
