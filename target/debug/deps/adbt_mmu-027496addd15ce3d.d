/root/repo/target/debug/deps/adbt_mmu-027496addd15ce3d.d: crates/mmu/src/lib.rs crates/mmu/src/fault.rs crates/mmu/src/mem.rs crates/mmu/src/space.rs

/root/repo/target/debug/deps/adbt_mmu-027496addd15ce3d: crates/mmu/src/lib.rs crates/mmu/src/fault.rs crates/mmu/src/mem.rs crates/mmu/src/space.rs

crates/mmu/src/lib.rs:
crates/mmu/src/fault.rs:
crates/mmu/src/mem.rs:
crates/mmu/src/space.rs:
