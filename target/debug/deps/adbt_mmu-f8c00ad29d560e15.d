/root/repo/target/debug/deps/adbt_mmu-f8c00ad29d560e15.d: crates/mmu/src/lib.rs crates/mmu/src/fault.rs crates/mmu/src/mem.rs crates/mmu/src/space.rs

/root/repo/target/debug/deps/libadbt_mmu-f8c00ad29d560e15.rlib: crates/mmu/src/lib.rs crates/mmu/src/fault.rs crates/mmu/src/mem.rs crates/mmu/src/space.rs

/root/repo/target/debug/deps/libadbt_mmu-f8c00ad29d560e15.rmeta: crates/mmu/src/lib.rs crates/mmu/src/fault.rs crates/mmu/src/mem.rs crates/mmu/src/space.rs

crates/mmu/src/lib.rs:
crates/mmu/src/fault.rs:
crates/mmu/src/mem.rs:
crates/mmu/src/space.rs:
