/root/repo/target/debug/deps/adbt_mmu-fe83f917317229c0.d: crates/mmu/src/lib.rs crates/mmu/src/fault.rs crates/mmu/src/mem.rs crates/mmu/src/space.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_mmu-fe83f917317229c0.rmeta: crates/mmu/src/lib.rs crates/mmu/src/fault.rs crates/mmu/src/mem.rs crates/mmu/src/space.rs Cargo.toml

crates/mmu/src/lib.rs:
crates/mmu/src/fault.rs:
crates/mmu/src/mem.rs:
crates/mmu/src/space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
