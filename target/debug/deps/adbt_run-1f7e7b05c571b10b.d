/root/repo/target/debug/deps/adbt_run-1f7e7b05c571b10b.d: crates/core/src/bin/adbt_run.rs

/root/repo/target/debug/deps/adbt_run-1f7e7b05c571b10b: crates/core/src/bin/adbt_run.rs

crates/core/src/bin/adbt_run.rs:
