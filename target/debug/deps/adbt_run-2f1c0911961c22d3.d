/root/repo/target/debug/deps/adbt_run-2f1c0911961c22d3.d: crates/core/src/bin/adbt_run.rs

/root/repo/target/debug/deps/adbt_run-2f1c0911961c22d3: crates/core/src/bin/adbt_run.rs

crates/core/src/bin/adbt_run.rs:
