/root/repo/target/debug/deps/adbt_run-32ad31c02fb4d9c2.d: crates/core/src/bin/adbt_run.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_run-32ad31c02fb4d9c2.rmeta: crates/core/src/bin/adbt_run.rs Cargo.toml

crates/core/src/bin/adbt_run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
