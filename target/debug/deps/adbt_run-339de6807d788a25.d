/root/repo/target/debug/deps/adbt_run-339de6807d788a25.d: crates/core/src/bin/adbt_run.rs

/root/repo/target/debug/deps/adbt_run-339de6807d788a25: crates/core/src/bin/adbt_run.rs

crates/core/src/bin/adbt_run.rs:
