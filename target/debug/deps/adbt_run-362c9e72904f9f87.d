/root/repo/target/debug/deps/adbt_run-362c9e72904f9f87.d: crates/core/src/bin/adbt_run.rs

/root/repo/target/debug/deps/adbt_run-362c9e72904f9f87: crates/core/src/bin/adbt_run.rs

crates/core/src/bin/adbt_run.rs:
