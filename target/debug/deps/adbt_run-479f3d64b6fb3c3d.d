/root/repo/target/debug/deps/adbt_run-479f3d64b6fb3c3d.d: crates/core/src/bin/adbt_run.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_run-479f3d64b6fb3c3d.rmeta: crates/core/src/bin/adbt_run.rs Cargo.toml

crates/core/src/bin/adbt_run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
