/root/repo/target/debug/deps/adbt_run-8fc7d304a72c2056.d: crates/core/src/bin/adbt_run.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_run-8fc7d304a72c2056.rmeta: crates/core/src/bin/adbt_run.rs Cargo.toml

crates/core/src/bin/adbt_run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
