/root/repo/target/debug/deps/adbt_run-93a0053b4ec03375.d: crates/core/src/bin/adbt_run.rs

/root/repo/target/debug/deps/adbt_run-93a0053b4ec03375: crates/core/src/bin/adbt_run.rs

crates/core/src/bin/adbt_run.rs:
