/root/repo/target/debug/deps/adbt_run-c023c2976262bc83.d: crates/core/src/bin/adbt_run.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_run-c023c2976262bc83.rmeta: crates/core/src/bin/adbt_run.rs Cargo.toml

crates/core/src/bin/adbt_run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
