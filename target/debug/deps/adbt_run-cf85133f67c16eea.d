/root/repo/target/debug/deps/adbt_run-cf85133f67c16eea.d: crates/core/src/bin/adbt_run.rs

/root/repo/target/debug/deps/adbt_run-cf85133f67c16eea: crates/core/src/bin/adbt_run.rs

crates/core/src/bin/adbt_run.rs:
