/root/repo/target/debug/deps/adbt_run-e49955c10bd1343f.d: crates/core/src/bin/adbt_run.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_run-e49955c10bd1343f.rmeta: crates/core/src/bin/adbt_run.rs Cargo.toml

crates/core/src/bin/adbt_run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
