/root/repo/target/debug/deps/adbt_schemes-03a4d237ccc2b2d5.d: crates/schemes/src/lib.rs crates/schemes/src/hst.rs crates/schemes/src/pico_cas.rs crates/schemes/src/pico_htm.rs crates/schemes/src/pico_st.rs crates/schemes/src/pst.rs

/root/repo/target/debug/deps/adbt_schemes-03a4d237ccc2b2d5: crates/schemes/src/lib.rs crates/schemes/src/hst.rs crates/schemes/src/pico_cas.rs crates/schemes/src/pico_htm.rs crates/schemes/src/pico_st.rs crates/schemes/src/pst.rs

crates/schemes/src/lib.rs:
crates/schemes/src/hst.rs:
crates/schemes/src/pico_cas.rs:
crates/schemes/src/pico_htm.rs:
crates/schemes/src/pico_st.rs:
crates/schemes/src/pst.rs:
