/root/repo/target/debug/deps/adbt_schemes-0d726ea3ea7a0227.d: crates/schemes/src/lib.rs crates/schemes/src/hst.rs crates/schemes/src/pico_cas.rs crates/schemes/src/pico_htm.rs crates/schemes/src/pico_st.rs crates/schemes/src/pst.rs

/root/repo/target/debug/deps/adbt_schemes-0d726ea3ea7a0227: crates/schemes/src/lib.rs crates/schemes/src/hst.rs crates/schemes/src/pico_cas.rs crates/schemes/src/pico_htm.rs crates/schemes/src/pico_st.rs crates/schemes/src/pst.rs

crates/schemes/src/lib.rs:
crates/schemes/src/hst.rs:
crates/schemes/src/pico_cas.rs:
crates/schemes/src/pico_htm.rs:
crates/schemes/src/pico_st.rs:
crates/schemes/src/pst.rs:
