/root/repo/target/debug/deps/adbt_schemes-ab56ae30d19032f7.d: crates/schemes/src/lib.rs crates/schemes/src/hst.rs crates/schemes/src/pico_cas.rs crates/schemes/src/pico_htm.rs crates/schemes/src/pico_st.rs crates/schemes/src/pst.rs

/root/repo/target/debug/deps/libadbt_schemes-ab56ae30d19032f7.rlib: crates/schemes/src/lib.rs crates/schemes/src/hst.rs crates/schemes/src/pico_cas.rs crates/schemes/src/pico_htm.rs crates/schemes/src/pico_st.rs crates/schemes/src/pst.rs

/root/repo/target/debug/deps/libadbt_schemes-ab56ae30d19032f7.rmeta: crates/schemes/src/lib.rs crates/schemes/src/hst.rs crates/schemes/src/pico_cas.rs crates/schemes/src/pico_htm.rs crates/schemes/src/pico_st.rs crates/schemes/src/pst.rs

crates/schemes/src/lib.rs:
crates/schemes/src/hst.rs:
crates/schemes/src/pico_cas.rs:
crates/schemes/src/pico_htm.rs:
crates/schemes/src/pico_st.rs:
crates/schemes/src/pst.rs:
