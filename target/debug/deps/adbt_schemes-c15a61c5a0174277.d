/root/repo/target/debug/deps/adbt_schemes-c15a61c5a0174277.d: crates/schemes/src/lib.rs crates/schemes/src/hst.rs crates/schemes/src/pico_cas.rs crates/schemes/src/pico_htm.rs crates/schemes/src/pico_st.rs crates/schemes/src/pst.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_schemes-c15a61c5a0174277.rmeta: crates/schemes/src/lib.rs crates/schemes/src/hst.rs crates/schemes/src/pico_cas.rs crates/schemes/src/pico_htm.rs crates/schemes/src/pico_st.rs crates/schemes/src/pst.rs Cargo.toml

crates/schemes/src/lib.rs:
crates/schemes/src/hst.rs:
crates/schemes/src/pico_cas.rs:
crates/schemes/src/pico_htm.rs:
crates/schemes/src/pico_st.rs:
crates/schemes/src/pst.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
