/root/repo/target/debug/deps/adbt_suite-1de87f828947f7c9.d: src/lib.rs

/root/repo/target/debug/deps/adbt_suite-1de87f828947f7c9: src/lib.rs

src/lib.rs:
