/root/repo/target/debug/deps/adbt_suite-2229dd39c3cd902e.d: src/lib.rs

/root/repo/target/debug/deps/libadbt_suite-2229dd39c3cd902e.rlib: src/lib.rs

/root/repo/target/debug/deps/libadbt_suite-2229dd39c3cd902e.rmeta: src/lib.rs

src/lib.rs:
