/root/repo/target/debug/deps/adbt_suite-2a08cc6c96e296cb.d: src/lib.rs

/root/repo/target/debug/deps/libadbt_suite-2a08cc6c96e296cb.rlib: src/lib.rs

/root/repo/target/debug/deps/libadbt_suite-2a08cc6c96e296cb.rmeta: src/lib.rs

src/lib.rs:
