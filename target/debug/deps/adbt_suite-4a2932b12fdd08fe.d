/root/repo/target/debug/deps/adbt_suite-4a2932b12fdd08fe.d: src/lib.rs

/root/repo/target/debug/deps/adbt_suite-4a2932b12fdd08fe: src/lib.rs

src/lib.rs:
