/root/repo/target/debug/deps/adbt_suite-60746f195dbeee7b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_suite-60746f195dbeee7b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
