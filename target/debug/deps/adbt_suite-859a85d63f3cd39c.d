/root/repo/target/debug/deps/adbt_suite-859a85d63f3cd39c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_suite-859a85d63f3cd39c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
