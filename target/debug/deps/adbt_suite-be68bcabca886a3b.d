/root/repo/target/debug/deps/adbt_suite-be68bcabca886a3b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_suite-be68bcabca886a3b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
