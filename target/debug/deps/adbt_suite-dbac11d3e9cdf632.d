/root/repo/target/debug/deps/adbt_suite-dbac11d3e9cdf632.d: src/lib.rs

/root/repo/target/debug/deps/adbt_suite-dbac11d3e9cdf632: src/lib.rs

src/lib.rs:
