/root/repo/target/debug/deps/adbt_suite-dd480b09ffa951d5.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_suite-dd480b09ffa951d5.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
