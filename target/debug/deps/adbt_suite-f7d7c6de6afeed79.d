/root/repo/target/debug/deps/adbt_suite-f7d7c6de6afeed79.d: src/lib.rs

/root/repo/target/debug/deps/libadbt_suite-f7d7c6de6afeed79.rlib: src/lib.rs

/root/repo/target/debug/deps/libadbt_suite-f7d7c6de6afeed79.rmeta: src/lib.rs

src/lib.rs:
