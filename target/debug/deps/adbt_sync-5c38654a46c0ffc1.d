/root/repo/target/debug/deps/adbt_sync-5c38654a46c0ffc1.d: crates/sync/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_sync-5c38654a46c0ffc1.rmeta: crates/sync/src/lib.rs Cargo.toml

crates/sync/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
