/root/repo/target/debug/deps/adbt_sync-b7ad89d3b6e4188d.d: crates/sync/src/lib.rs

/root/repo/target/debug/deps/libadbt_sync-b7ad89d3b6e4188d.rlib: crates/sync/src/lib.rs

/root/repo/target/debug/deps/libadbt_sync-b7ad89d3b6e4188d.rmeta: crates/sync/src/lib.rs

crates/sync/src/lib.rs:
