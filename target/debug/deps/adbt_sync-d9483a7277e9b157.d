/root/repo/target/debug/deps/adbt_sync-d9483a7277e9b157.d: crates/sync/src/lib.rs

/root/repo/target/debug/deps/adbt_sync-d9483a7277e9b157: crates/sync/src/lib.rs

crates/sync/src/lib.rs:
