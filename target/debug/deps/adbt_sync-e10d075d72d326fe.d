/root/repo/target/debug/deps/adbt_sync-e10d075d72d326fe.d: crates/sync/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_sync-e10d075d72d326fe.rmeta: crates/sync/src/lib.rs Cargo.toml

crates/sync/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
