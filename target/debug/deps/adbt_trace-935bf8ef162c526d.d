/root/repo/target/debug/deps/adbt_trace-935bf8ef162c526d.d: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/hist.rs crates/trace/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_trace-935bf8ef162c526d.rmeta: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/hist.rs crates/trace/src/validate.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/chrome.rs:
crates/trace/src/hist.rs:
crates/trace/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
