/root/repo/target/debug/deps/adbt_trace-b2f78710ce40af72.d: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/hist.rs crates/trace/src/validate.rs

/root/repo/target/debug/deps/libadbt_trace-b2f78710ce40af72.rlib: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/hist.rs crates/trace/src/validate.rs

/root/repo/target/debug/deps/libadbt_trace-b2f78710ce40af72.rmeta: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/hist.rs crates/trace/src/validate.rs

crates/trace/src/lib.rs:
crates/trace/src/chrome.rs:
crates/trace/src/hist.rs:
crates/trace/src/validate.rs:
