/root/repo/target/debug/deps/adbt_trace-b832c98e99258530.d: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/hist.rs crates/trace/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_trace-b832c98e99258530.rmeta: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/hist.rs crates/trace/src/validate.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/chrome.rs:
crates/trace/src/hist.rs:
crates/trace/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
