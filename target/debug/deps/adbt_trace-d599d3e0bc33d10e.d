/root/repo/target/debug/deps/adbt_trace-d599d3e0bc33d10e.d: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/hist.rs crates/trace/src/validate.rs

/root/repo/target/debug/deps/adbt_trace-d599d3e0bc33d10e: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/hist.rs crates/trace/src/validate.rs

crates/trace/src/lib.rs:
crates/trace/src/chrome.rs:
crates/trace/src/hist.rs:
crates/trace/src/validate.rs:
