/root/repo/target/debug/deps/adbt_workloads-5e66eaf16c1f96a5.d: crates/workloads/src/lib.rs crates/workloads/src/interleave.rs crates/workloads/src/litmus.rs crates/workloads/src/parsec.rs crates/workloads/src/rt.rs crates/workloads/src/stack.rs

/root/repo/target/debug/deps/libadbt_workloads-5e66eaf16c1f96a5.rlib: crates/workloads/src/lib.rs crates/workloads/src/interleave.rs crates/workloads/src/litmus.rs crates/workloads/src/parsec.rs crates/workloads/src/rt.rs crates/workloads/src/stack.rs

/root/repo/target/debug/deps/libadbt_workloads-5e66eaf16c1f96a5.rmeta: crates/workloads/src/lib.rs crates/workloads/src/interleave.rs crates/workloads/src/litmus.rs crates/workloads/src/parsec.rs crates/workloads/src/rt.rs crates/workloads/src/stack.rs

crates/workloads/src/lib.rs:
crates/workloads/src/interleave.rs:
crates/workloads/src/litmus.rs:
crates/workloads/src/parsec.rs:
crates/workloads/src/rt.rs:
crates/workloads/src/stack.rs:
