/root/repo/target/debug/deps/adbt_workloads-663e676689a8ef10.d: crates/workloads/src/lib.rs crates/workloads/src/interleave.rs crates/workloads/src/litmus.rs crates/workloads/src/parsec.rs crates/workloads/src/rt.rs crates/workloads/src/stack.rs Cargo.toml

/root/repo/target/debug/deps/libadbt_workloads-663e676689a8ef10.rmeta: crates/workloads/src/lib.rs crates/workloads/src/interleave.rs crates/workloads/src/litmus.rs crates/workloads/src/parsec.rs crates/workloads/src/rt.rs crates/workloads/src/stack.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/interleave.rs:
crates/workloads/src/litmus.rs:
crates/workloads/src/parsec.rs:
crates/workloads/src/rt.rs:
crates/workloads/src/stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
