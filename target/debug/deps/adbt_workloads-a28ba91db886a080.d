/root/repo/target/debug/deps/adbt_workloads-a28ba91db886a080.d: crates/workloads/src/lib.rs crates/workloads/src/interleave.rs crates/workloads/src/litmus.rs crates/workloads/src/parsec.rs crates/workloads/src/rt.rs crates/workloads/src/stack.rs

/root/repo/target/debug/deps/adbt_workloads-a28ba91db886a080: crates/workloads/src/lib.rs crates/workloads/src/interleave.rs crates/workloads/src/litmus.rs crates/workloads/src/parsec.rs crates/workloads/src/rt.rs crates/workloads/src/stack.rs

crates/workloads/src/lib.rs:
crates/workloads/src/interleave.rs:
crates/workloads/src/litmus.rs:
crates/workloads/src/parsec.rs:
crates/workloads/src/rt.rs:
crates/workloads/src/stack.rs:
