/root/repo/target/debug/deps/alu_prop-1e1940aa34ca587f.d: crates/engine/tests/alu_prop.rs

/root/repo/target/debug/deps/alu_prop-1e1940aa34ca587f: crates/engine/tests/alu_prop.rs

crates/engine/tests/alu_prop.rs:
