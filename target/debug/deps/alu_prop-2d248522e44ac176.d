/root/repo/target/debug/deps/alu_prop-2d248522e44ac176.d: crates/engine/tests/alu_prop.rs Cargo.toml

/root/repo/target/debug/deps/libalu_prop-2d248522e44ac176.rmeta: crates/engine/tests/alu_prop.rs Cargo.toml

crates/engine/tests/alu_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
