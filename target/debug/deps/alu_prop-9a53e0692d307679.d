/root/repo/target/debug/deps/alu_prop-9a53e0692d307679.d: crates/engine/tests/alu_prop.rs Cargo.toml

/root/repo/target/debug/deps/libalu_prop-9a53e0692d307679.rmeta: crates/engine/tests/alu_prop.rs Cargo.toml

crates/engine/tests/alu_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
