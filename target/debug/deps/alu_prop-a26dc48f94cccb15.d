/root/repo/target/debug/deps/alu_prop-a26dc48f94cccb15.d: crates/engine/tests/alu_prop.rs Cargo.toml

/root/repo/target/debug/deps/libalu_prop-a26dc48f94cccb15.rmeta: crates/engine/tests/alu_prop.rs Cargo.toml

crates/engine/tests/alu_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
