/root/repo/target/debug/deps/alu_prop-ed90154823a1a5ff.d: crates/engine/tests/alu_prop.rs

/root/repo/target/debug/deps/alu_prop-ed90154823a1a5ff: crates/engine/tests/alu_prop.rs

crates/engine/tests/alu_prop.rs:
