/root/repo/target/debug/deps/alu_prop-f2a112704aeac859.d: crates/engine/tests/alu_prop.rs

/root/repo/target/debug/deps/alu_prop-f2a112704aeac859: crates/engine/tests/alu_prop.rs

crates/engine/tests/alu_prop.rs:
