/root/repo/target/debug/deps/chaining-14ca491768e1d0f5.d: crates/engine/tests/chaining.rs Cargo.toml

/root/repo/target/debug/deps/libchaining-14ca491768e1d0f5.rmeta: crates/engine/tests/chaining.rs Cargo.toml

crates/engine/tests/chaining.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
