/root/repo/target/debug/deps/chaining-239cec7d8e514cb6.d: crates/engine/tests/chaining.rs

/root/repo/target/debug/deps/chaining-239cec7d8e514cb6: crates/engine/tests/chaining.rs

crates/engine/tests/chaining.rs:
