/root/repo/target/debug/deps/chaining-3a4b15e5a63235c5.d: crates/engine/tests/chaining.rs Cargo.toml

/root/repo/target/debug/deps/libchaining-3a4b15e5a63235c5.rmeta: crates/engine/tests/chaining.rs Cargo.toml

crates/engine/tests/chaining.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
