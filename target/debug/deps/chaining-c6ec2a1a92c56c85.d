/root/repo/target/debug/deps/chaining-c6ec2a1a92c56c85.d: crates/engine/tests/chaining.rs

/root/repo/target/debug/deps/chaining-c6ec2a1a92c56c85: crates/engine/tests/chaining.rs

crates/engine/tests/chaining.rs:
