/root/repo/target/debug/deps/chaining-f7d7c98915e29bc1.d: crates/engine/tests/chaining.rs

/root/repo/target/debug/deps/chaining-f7d7c98915e29bc1: crates/engine/tests/chaining.rs

crates/engine/tests/chaining.rs:
