/root/repo/target/debug/deps/chaos_soak-67c1ebc1803dbf88.d: tests/chaos_soak.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_soak-67c1ebc1803dbf88.rmeta: tests/chaos_soak.rs Cargo.toml

tests/chaos_soak.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
