/root/repo/target/debug/deps/chaos_soak-6f8bc62987df1447.d: tests/chaos_soak.rs

/root/repo/target/debug/deps/chaos_soak-6f8bc62987df1447: tests/chaos_soak.rs

tests/chaos_soak.rs:
