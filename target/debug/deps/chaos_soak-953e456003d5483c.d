/root/repo/target/debug/deps/chaos_soak-953e456003d5483c.d: tests/chaos_soak.rs

/root/repo/target/debug/deps/chaos_soak-953e456003d5483c: tests/chaos_soak.rs

tests/chaos_soak.rs:
