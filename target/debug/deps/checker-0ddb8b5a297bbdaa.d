/root/repo/target/debug/deps/checker-0ddb8b5a297bbdaa.d: crates/check/tests/checker.rs Cargo.toml

/root/repo/target/debug/deps/libchecker-0ddb8b5a297bbdaa.rmeta: crates/check/tests/checker.rs Cargo.toml

crates/check/tests/checker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
