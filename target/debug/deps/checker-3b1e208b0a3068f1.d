/root/repo/target/debug/deps/checker-3b1e208b0a3068f1.d: crates/check/tests/checker.rs Cargo.toml

/root/repo/target/debug/deps/libchecker-3b1e208b0a3068f1.rmeta: crates/check/tests/checker.rs Cargo.toml

crates/check/tests/checker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
