/root/repo/target/debug/deps/checker-708b0919dc27a18e.d: crates/check/tests/checker.rs

/root/repo/target/debug/deps/checker-708b0919dc27a18e: crates/check/tests/checker.rs

crates/check/tests/checker.rs:
