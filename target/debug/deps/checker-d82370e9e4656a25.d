/root/repo/target/debug/deps/checker-d82370e9e4656a25.d: crates/check/tests/checker.rs

/root/repo/target/debug/deps/checker-d82370e9e4656a25: crates/check/tests/checker.rs

crates/check/tests/checker.rs:
