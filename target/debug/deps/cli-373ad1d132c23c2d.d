/root/repo/target/debug/deps/cli-373ad1d132c23c2d.d: crates/core/tests/cli.rs

/root/repo/target/debug/deps/cli-373ad1d132c23c2d: crates/core/tests/cli.rs

crates/core/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_adbt_run=/root/repo/target/debug/adbt_run
