/root/repo/target/debug/deps/cli-5887501a5e14881f.d: crates/core/tests/cli.rs

/root/repo/target/debug/deps/cli-5887501a5e14881f: crates/core/tests/cli.rs

crates/core/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_adbt_run=/root/repo/target/debug/adbt_run
