/root/repo/target/debug/deps/cli-59e9bd3d80dd03ef.d: crates/core/tests/cli.rs

/root/repo/target/debug/deps/cli-59e9bd3d80dd03ef: crates/core/tests/cli.rs

crates/core/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_adbt_run=/root/repo/target/debug/adbt_run
