/root/repo/target/debug/deps/cli-64f7652c0a5e135b.d: crates/core/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-64f7652c0a5e135b.rmeta: crates/core/tests/cli.rs Cargo.toml

crates/core/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_adbt_run=placeholder:adbt_run
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
