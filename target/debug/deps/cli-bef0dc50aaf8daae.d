/root/repo/target/debug/deps/cli-bef0dc50aaf8daae.d: crates/core/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-bef0dc50aaf8daae.rmeta: crates/core/tests/cli.rs Cargo.toml

crates/core/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_adbt_run=placeholder:adbt_run
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
