/root/repo/target/debug/deps/concurrent-4f5237f4cdcaf2f5.d: crates/schemes/tests/concurrent.rs

/root/repo/target/debug/deps/concurrent-4f5237f4cdcaf2f5: crates/schemes/tests/concurrent.rs

crates/schemes/tests/concurrent.rs:
