/root/repo/target/debug/deps/concurrent-58a6b1b5a8b87881.d: crates/schemes/tests/concurrent.rs

/root/repo/target/debug/deps/concurrent-58a6b1b5a8b87881: crates/schemes/tests/concurrent.rs

crates/schemes/tests/concurrent.rs:
