/root/repo/target/debug/deps/concurrent-aa320eb01a79e4bd.d: crates/schemes/tests/concurrent.rs

/root/repo/target/debug/deps/concurrent-aa320eb01a79e4bd: crates/schemes/tests/concurrent.rs

crates/schemes/tests/concurrent.rs:
