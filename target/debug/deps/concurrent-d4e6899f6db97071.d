/root/repo/target/debug/deps/concurrent-d4e6899f6db97071.d: crates/schemes/tests/concurrent.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrent-d4e6899f6db97071.rmeta: crates/schemes/tests/concurrent.rs Cargo.toml

crates/schemes/tests/concurrent.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
