/root/repo/target/debug/deps/concurrent-e88df78ee61c152d.d: crates/schemes/tests/concurrent.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrent-e88df78ee61c152d.rmeta: crates/schemes/tests/concurrent.rs Cargo.toml

crates/schemes/tests/concurrent.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
