/root/repo/target/debug/deps/concurrent-fcec9e2dabdda004.d: crates/schemes/tests/concurrent.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrent-fcec9e2dabdda004.rmeta: crates/schemes/tests/concurrent.rs Cargo.toml

crates/schemes/tests/concurrent.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
