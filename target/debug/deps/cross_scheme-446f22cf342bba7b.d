/root/repo/target/debug/deps/cross_scheme-446f22cf342bba7b.d: tests/cross_scheme.rs Cargo.toml

/root/repo/target/debug/deps/libcross_scheme-446f22cf342bba7b.rmeta: tests/cross_scheme.rs Cargo.toml

tests/cross_scheme.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
