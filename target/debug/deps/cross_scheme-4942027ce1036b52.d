/root/repo/target/debug/deps/cross_scheme-4942027ce1036b52.d: tests/cross_scheme.rs

/root/repo/target/debug/deps/cross_scheme-4942027ce1036b52: tests/cross_scheme.rs

tests/cross_scheme.rs:
