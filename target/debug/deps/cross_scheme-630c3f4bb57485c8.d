/root/repo/target/debug/deps/cross_scheme-630c3f4bb57485c8.d: tests/cross_scheme.rs

/root/repo/target/debug/deps/cross_scheme-630c3f4bb57485c8: tests/cross_scheme.rs

tests/cross_scheme.rs:
