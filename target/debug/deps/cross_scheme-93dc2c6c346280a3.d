/root/repo/target/debug/deps/cross_scheme-93dc2c6c346280a3.d: tests/cross_scheme.rs

/root/repo/target/debug/deps/cross_scheme-93dc2c6c346280a3: tests/cross_scheme.rs

tests/cross_scheme.rs:
