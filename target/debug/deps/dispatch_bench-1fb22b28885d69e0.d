/root/repo/target/debug/deps/dispatch_bench-1fb22b28885d69e0.d: crates/bench/src/bin/dispatch_bench.rs

/root/repo/target/debug/deps/dispatch_bench-1fb22b28885d69e0: crates/bench/src/bin/dispatch_bench.rs

crates/bench/src/bin/dispatch_bench.rs:
