/root/repo/target/debug/deps/dispatch_bench-5da55314333200fb.d: crates/bench/src/bin/dispatch_bench.rs

/root/repo/target/debug/deps/dispatch_bench-5da55314333200fb: crates/bench/src/bin/dispatch_bench.rs

crates/bench/src/bin/dispatch_bench.rs:
