/root/repo/target/debug/deps/dispatch_bench-61752970f822f137.d: crates/bench/src/bin/dispatch_bench.rs

/root/repo/target/debug/deps/dispatch_bench-61752970f822f137: crates/bench/src/bin/dispatch_bench.rs

crates/bench/src/bin/dispatch_bench.rs:
