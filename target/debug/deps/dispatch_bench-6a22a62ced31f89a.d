/root/repo/target/debug/deps/dispatch_bench-6a22a62ced31f89a.d: crates/bench/src/bin/dispatch_bench.rs

/root/repo/target/debug/deps/dispatch_bench-6a22a62ced31f89a: crates/bench/src/bin/dispatch_bench.rs

crates/bench/src/bin/dispatch_bench.rs:
