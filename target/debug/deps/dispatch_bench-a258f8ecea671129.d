/root/repo/target/debug/deps/dispatch_bench-a258f8ecea671129.d: crates/bench/src/bin/dispatch_bench.rs Cargo.toml

/root/repo/target/debug/deps/libdispatch_bench-a258f8ecea671129.rmeta: crates/bench/src/bin/dispatch_bench.rs Cargo.toml

crates/bench/src/bin/dispatch_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
