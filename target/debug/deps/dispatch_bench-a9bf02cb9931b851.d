/root/repo/target/debug/deps/dispatch_bench-a9bf02cb9931b851.d: crates/bench/src/bin/dispatch_bench.rs

/root/repo/target/debug/deps/dispatch_bench-a9bf02cb9931b851: crates/bench/src/bin/dispatch_bench.rs

crates/bench/src/bin/dispatch_bench.rs:
