/root/repo/target/debug/deps/dispatch_bench-cf023df70573bb43.d: crates/bench/src/bin/dispatch_bench.rs

/root/repo/target/debug/deps/dispatch_bench-cf023df70573bb43: crates/bench/src/bin/dispatch_bench.rs

crates/bench/src/bin/dispatch_bench.rs:
