/root/repo/target/debug/deps/dispatch_bench-f1cca6fd24502bb5.d: crates/bench/src/bin/dispatch_bench.rs Cargo.toml

/root/repo/target/debug/deps/libdispatch_bench-f1cca6fd24502bb5.rmeta: crates/bench/src/bin/dispatch_bench.rs Cargo.toml

crates/bench/src/bin/dispatch_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
