/root/repo/target/debug/deps/exec-0bbf4aabb6c25399.d: crates/engine/tests/exec.rs Cargo.toml

/root/repo/target/debug/deps/libexec-0bbf4aabb6c25399.rmeta: crates/engine/tests/exec.rs Cargo.toml

crates/engine/tests/exec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
