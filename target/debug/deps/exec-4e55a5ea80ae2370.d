/root/repo/target/debug/deps/exec-4e55a5ea80ae2370.d: crates/engine/tests/exec.rs

/root/repo/target/debug/deps/exec-4e55a5ea80ae2370: crates/engine/tests/exec.rs

crates/engine/tests/exec.rs:
