/root/repo/target/debug/deps/exec-7bde41eee29ae76d.d: crates/engine/tests/exec.rs

/root/repo/target/debug/deps/exec-7bde41eee29ae76d: crates/engine/tests/exec.rs

crates/engine/tests/exec.rs:
