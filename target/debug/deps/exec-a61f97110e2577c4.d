/root/repo/target/debug/deps/exec-a61f97110e2577c4.d: crates/engine/tests/exec.rs

/root/repo/target/debug/deps/exec-a61f97110e2577c4: crates/engine/tests/exec.rs

crates/engine/tests/exec.rs:
