/root/repo/target/debug/deps/exec-cd890395bb607ab3.d: crates/engine/tests/exec.rs Cargo.toml

/root/repo/target/debug/deps/libexec-cd890395bb607ab3.rmeta: crates/engine/tests/exec.rs Cargo.toml

crates/engine/tests/exec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
