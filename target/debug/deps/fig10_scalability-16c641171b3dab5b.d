/root/repo/target/debug/deps/fig10_scalability-16c641171b3dab5b.d: crates/bench/src/bin/fig10_scalability.rs

/root/repo/target/debug/deps/fig10_scalability-16c641171b3dab5b: crates/bench/src/bin/fig10_scalability.rs

crates/bench/src/bin/fig10_scalability.rs:
