/root/repo/target/debug/deps/fig10_scalability-6809682511522232.d: crates/bench/src/bin/fig10_scalability.rs

/root/repo/target/debug/deps/fig10_scalability-6809682511522232: crates/bench/src/bin/fig10_scalability.rs

crates/bench/src/bin/fig10_scalability.rs:
