/root/repo/target/debug/deps/fig10_scalability-6da873893962271e.d: crates/bench/src/bin/fig10_scalability.rs

/root/repo/target/debug/deps/fig10_scalability-6da873893962271e: crates/bench/src/bin/fig10_scalability.rs

crates/bench/src/bin/fig10_scalability.rs:
