/root/repo/target/debug/deps/fig10_scalability-6f44c38860e44f71.d: crates/bench/src/bin/fig10_scalability.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_scalability-6f44c38860e44f71.rmeta: crates/bench/src/bin/fig10_scalability.rs Cargo.toml

crates/bench/src/bin/fig10_scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
