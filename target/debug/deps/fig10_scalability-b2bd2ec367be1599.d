/root/repo/target/debug/deps/fig10_scalability-b2bd2ec367be1599.d: crates/bench/src/bin/fig10_scalability.rs

/root/repo/target/debug/deps/fig10_scalability-b2bd2ec367be1599: crates/bench/src/bin/fig10_scalability.rs

crates/bench/src/bin/fig10_scalability.rs:
