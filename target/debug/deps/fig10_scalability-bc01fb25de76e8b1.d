/root/repo/target/debug/deps/fig10_scalability-bc01fb25de76e8b1.d: crates/bench/src/bin/fig10_scalability.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_scalability-bc01fb25de76e8b1.rmeta: crates/bench/src/bin/fig10_scalability.rs Cargo.toml

crates/bench/src/bin/fig10_scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
