/root/repo/target/debug/deps/fig10_scalability-c5a96776467241f7.d: crates/bench/src/bin/fig10_scalability.rs

/root/repo/target/debug/deps/fig10_scalability-c5a96776467241f7: crates/bench/src/bin/fig10_scalability.rs

crates/bench/src/bin/fig10_scalability.rs:
