/root/repo/target/debug/deps/fig10_scalability-d91e13b2b87f877c.d: crates/bench/src/bin/fig10_scalability.rs

/root/repo/target/debug/deps/fig10_scalability-d91e13b2b87f877c: crates/bench/src/bin/fig10_scalability.rs

crates/bench/src/bin/fig10_scalability.rs:
