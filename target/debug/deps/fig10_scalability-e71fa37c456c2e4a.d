/root/repo/target/debug/deps/fig10_scalability-e71fa37c456c2e4a.d: crates/bench/src/bin/fig10_scalability.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_scalability-e71fa37c456c2e4a.rmeta: crates/bench/src/bin/fig10_scalability.rs Cargo.toml

crates/bench/src/bin/fig10_scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
