/root/repo/target/debug/deps/fig11_htm-01c1210e8d004e89.d: crates/bench/src/bin/fig11_htm.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_htm-01c1210e8d004e89.rmeta: crates/bench/src/bin/fig11_htm.rs Cargo.toml

crates/bench/src/bin/fig11_htm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
