/root/repo/target/debug/deps/fig11_htm-063ee030ab1fec44.d: crates/bench/src/bin/fig11_htm.rs

/root/repo/target/debug/deps/fig11_htm-063ee030ab1fec44: crates/bench/src/bin/fig11_htm.rs

crates/bench/src/bin/fig11_htm.rs:
