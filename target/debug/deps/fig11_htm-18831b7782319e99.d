/root/repo/target/debug/deps/fig11_htm-18831b7782319e99.d: crates/bench/src/bin/fig11_htm.rs

/root/repo/target/debug/deps/fig11_htm-18831b7782319e99: crates/bench/src/bin/fig11_htm.rs

crates/bench/src/bin/fig11_htm.rs:
