/root/repo/target/debug/deps/fig11_htm-30703940085353ca.d: crates/bench/src/bin/fig11_htm.rs

/root/repo/target/debug/deps/fig11_htm-30703940085353ca: crates/bench/src/bin/fig11_htm.rs

crates/bench/src/bin/fig11_htm.rs:
