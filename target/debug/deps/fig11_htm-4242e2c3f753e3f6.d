/root/repo/target/debug/deps/fig11_htm-4242e2c3f753e3f6.d: crates/bench/src/bin/fig11_htm.rs

/root/repo/target/debug/deps/fig11_htm-4242e2c3f753e3f6: crates/bench/src/bin/fig11_htm.rs

crates/bench/src/bin/fig11_htm.rs:
