/root/repo/target/debug/deps/fig11_htm-867da5972f8b6c0c.d: crates/bench/src/bin/fig11_htm.rs

/root/repo/target/debug/deps/fig11_htm-867da5972f8b6c0c: crates/bench/src/bin/fig11_htm.rs

crates/bench/src/bin/fig11_htm.rs:
