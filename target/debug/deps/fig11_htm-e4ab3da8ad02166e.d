/root/repo/target/debug/deps/fig11_htm-e4ab3da8ad02166e.d: crates/bench/src/bin/fig11_htm.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_htm-e4ab3da8ad02166e.rmeta: crates/bench/src/bin/fig11_htm.rs Cargo.toml

crates/bench/src/bin/fig11_htm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
