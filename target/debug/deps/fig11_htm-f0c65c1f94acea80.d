/root/repo/target/debug/deps/fig11_htm-f0c65c1f94acea80.d: crates/bench/src/bin/fig11_htm.rs

/root/repo/target/debug/deps/fig11_htm-f0c65c1f94acea80: crates/bench/src/bin/fig11_htm.rs

crates/bench/src/bin/fig11_htm.rs:
