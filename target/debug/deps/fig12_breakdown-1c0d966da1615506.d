/root/repo/target/debug/deps/fig12_breakdown-1c0d966da1615506.d: crates/bench/src/bin/fig12_breakdown.rs

/root/repo/target/debug/deps/fig12_breakdown-1c0d966da1615506: crates/bench/src/bin/fig12_breakdown.rs

crates/bench/src/bin/fig12_breakdown.rs:
