/root/repo/target/debug/deps/fig12_breakdown-337255a284aa84ee.d: crates/bench/src/bin/fig12_breakdown.rs

/root/repo/target/debug/deps/fig12_breakdown-337255a284aa84ee: crates/bench/src/bin/fig12_breakdown.rs

crates/bench/src/bin/fig12_breakdown.rs:
