/root/repo/target/debug/deps/fig12_breakdown-95e7b279e93f553f.d: crates/bench/src/bin/fig12_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_breakdown-95e7b279e93f553f.rmeta: crates/bench/src/bin/fig12_breakdown.rs Cargo.toml

crates/bench/src/bin/fig12_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
