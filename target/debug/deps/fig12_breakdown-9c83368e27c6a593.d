/root/repo/target/debug/deps/fig12_breakdown-9c83368e27c6a593.d: crates/bench/src/bin/fig12_breakdown.rs

/root/repo/target/debug/deps/fig12_breakdown-9c83368e27c6a593: crates/bench/src/bin/fig12_breakdown.rs

crates/bench/src/bin/fig12_breakdown.rs:
