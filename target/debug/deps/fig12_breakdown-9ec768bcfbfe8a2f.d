/root/repo/target/debug/deps/fig12_breakdown-9ec768bcfbfe8a2f.d: crates/bench/src/bin/fig12_breakdown.rs

/root/repo/target/debug/deps/fig12_breakdown-9ec768bcfbfe8a2f: crates/bench/src/bin/fig12_breakdown.rs

crates/bench/src/bin/fig12_breakdown.rs:
