/root/repo/target/debug/deps/fig12_breakdown-d9d0cb450e73c973.d: crates/bench/src/bin/fig12_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_breakdown-d9d0cb450e73c973.rmeta: crates/bench/src/bin/fig12_breakdown.rs Cargo.toml

crates/bench/src/bin/fig12_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
