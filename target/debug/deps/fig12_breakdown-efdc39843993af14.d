/root/repo/target/debug/deps/fig12_breakdown-efdc39843993af14.d: crates/bench/src/bin/fig12_breakdown.rs

/root/repo/target/debug/deps/fig12_breakdown-efdc39843993af14: crates/bench/src/bin/fig12_breakdown.rs

crates/bench/src/bin/fig12_breakdown.rs:
