/root/repo/target/debug/deps/fig12_breakdown-fa3a2f7f99b541e3.d: crates/bench/src/bin/fig12_breakdown.rs

/root/repo/target/debug/deps/fig12_breakdown-fa3a2f7f99b541e3: crates/bench/src/bin/fig12_breakdown.rs

crates/bench/src/bin/fig12_breakdown.rs:
