/root/repo/target/debug/deps/fused_atomics-0f04e603f9e4b377.d: tests/fused_atomics.rs

/root/repo/target/debug/deps/fused_atomics-0f04e603f9e4b377: tests/fused_atomics.rs

tests/fused_atomics.rs:
