/root/repo/target/debug/deps/fused_atomics-17c0e3c710317f04.d: tests/fused_atomics.rs

/root/repo/target/debug/deps/fused_atomics-17c0e3c710317f04: tests/fused_atomics.rs

tests/fused_atomics.rs:
