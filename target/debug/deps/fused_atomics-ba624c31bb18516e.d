/root/repo/target/debug/deps/fused_atomics-ba624c31bb18516e.d: tests/fused_atomics.rs

/root/repo/target/debug/deps/fused_atomics-ba624c31bb18516e: tests/fused_atomics.rs

tests/fused_atomics.rs:
