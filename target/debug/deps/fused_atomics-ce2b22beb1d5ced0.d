/root/repo/target/debug/deps/fused_atomics-ce2b22beb1d5ced0.d: tests/fused_atomics.rs Cargo.toml

/root/repo/target/debug/deps/libfused_atomics-ce2b22beb1d5ced0.rmeta: tests/fused_atomics.rs Cargo.toml

tests/fused_atomics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
