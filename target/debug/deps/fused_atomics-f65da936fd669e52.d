/root/repo/target/debug/deps/fused_atomics-f65da936fd669e52.d: tests/fused_atomics.rs Cargo.toml

/root/repo/target/debug/deps/libfused_atomics-f65da936fd669e52.rmeta: tests/fused_atomics.rs Cargo.toml

tests/fused_atomics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
