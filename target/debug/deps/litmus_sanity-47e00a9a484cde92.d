/root/repo/target/debug/deps/litmus_sanity-47e00a9a484cde92.d: crates/check/tests/litmus_sanity.rs

/root/repo/target/debug/deps/litmus_sanity-47e00a9a484cde92: crates/check/tests/litmus_sanity.rs

crates/check/tests/litmus_sanity.rs:
