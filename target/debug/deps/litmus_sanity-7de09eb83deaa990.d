/root/repo/target/debug/deps/litmus_sanity-7de09eb83deaa990.d: crates/check/tests/litmus_sanity.rs Cargo.toml

/root/repo/target/debug/deps/liblitmus_sanity-7de09eb83deaa990.rmeta: crates/check/tests/litmus_sanity.rs Cargo.toml

crates/check/tests/litmus_sanity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
