/root/repo/target/debug/deps/litmus_sanity-9d171e02fd3b5be2.d: crates/check/tests/litmus_sanity.rs

/root/repo/target/debug/deps/litmus_sanity-9d171e02fd3b5be2: crates/check/tests/litmus_sanity.rs

crates/check/tests/litmus_sanity.rs:
