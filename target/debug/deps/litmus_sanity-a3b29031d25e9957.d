/root/repo/target/debug/deps/litmus_sanity-a3b29031d25e9957.d: crates/check/tests/litmus_sanity.rs Cargo.toml

/root/repo/target/debug/deps/liblitmus_sanity-a3b29031d25e9957.rmeta: crates/check/tests/litmus_sanity.rs Cargo.toml

crates/check/tests/litmus_sanity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
