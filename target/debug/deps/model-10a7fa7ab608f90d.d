/root/repo/target/debug/deps/model-10a7fa7ab608f90d.d: crates/mmu/tests/model.rs Cargo.toml

/root/repo/target/debug/deps/libmodel-10a7fa7ab608f90d.rmeta: crates/mmu/tests/model.rs Cargo.toml

crates/mmu/tests/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
