/root/repo/target/debug/deps/model-24be534258fc64f3.d: crates/mmu/tests/model.rs

/root/repo/target/debug/deps/model-24be534258fc64f3: crates/mmu/tests/model.rs

crates/mmu/tests/model.rs:
