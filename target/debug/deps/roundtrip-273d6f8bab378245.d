/root/repo/target/debug/deps/roundtrip-273d6f8bab378245.d: crates/isa/tests/roundtrip.rs

/root/repo/target/debug/deps/roundtrip-273d6f8bab378245: crates/isa/tests/roundtrip.rs

crates/isa/tests/roundtrip.rs:
