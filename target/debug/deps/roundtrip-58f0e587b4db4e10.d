/root/repo/target/debug/deps/roundtrip-58f0e587b4db4e10.d: crates/isa/tests/roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libroundtrip-58f0e587b4db4e10.rmeta: crates/isa/tests/roundtrip.rs Cargo.toml

crates/isa/tests/roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
