/root/repo/target/debug/deps/scheme_details-37527ebed5d01bee.d: crates/schemes/tests/scheme_details.rs

/root/repo/target/debug/deps/scheme_details-37527ebed5d01bee: crates/schemes/tests/scheme_details.rs

crates/schemes/tests/scheme_details.rs:
