/root/repo/target/debug/deps/scheme_details-715c378df21614da.d: crates/schemes/tests/scheme_details.rs Cargo.toml

/root/repo/target/debug/deps/libscheme_details-715c378df21614da.rmeta: crates/schemes/tests/scheme_details.rs Cargo.toml

crates/schemes/tests/scheme_details.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
