/root/repo/target/debug/deps/scheme_details-bb1a77e738e56bed.d: crates/schemes/tests/scheme_details.rs

/root/repo/target/debug/deps/scheme_details-bb1a77e738e56bed: crates/schemes/tests/scheme_details.rs

crates/schemes/tests/scheme_details.rs:
