/root/repo/target/debug/deps/scheme_details-c07c9063a605465b.d: crates/schemes/tests/scheme_details.rs

/root/repo/target/debug/deps/scheme_details-c07c9063a605465b: crates/schemes/tests/scheme_details.rs

crates/schemes/tests/scheme_details.rs:
