/root/repo/target/debug/deps/scheme_details-d66f9b3e3ee7889b.d: crates/schemes/tests/scheme_details.rs Cargo.toml

/root/repo/target/debug/deps/libscheme_details-d66f9b3e3ee7889b.rmeta: crates/schemes/tests/scheme_details.rs Cargo.toml

crates/schemes/tests/scheme_details.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
