/root/repo/target/debug/deps/semantics-001c8e60fdc9f04e.d: crates/htm/tests/semantics.rs Cargo.toml

/root/repo/target/debug/deps/libsemantics-001c8e60fdc9f04e.rmeta: crates/htm/tests/semantics.rs Cargo.toml

crates/htm/tests/semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
