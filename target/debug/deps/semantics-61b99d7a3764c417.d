/root/repo/target/debug/deps/semantics-61b99d7a3764c417.d: crates/htm/tests/semantics.rs

/root/repo/target/debug/deps/semantics-61b99d7a3764c417: crates/htm/tests/semantics.rs

crates/htm/tests/semantics.rs:
