/root/repo/target/debug/deps/sim-28744a52a0b6c55d.d: crates/engine/tests/sim.rs

/root/repo/target/debug/deps/sim-28744a52a0b6c55d: crates/engine/tests/sim.rs

crates/engine/tests/sim.rs:
