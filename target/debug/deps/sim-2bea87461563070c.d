/root/repo/target/debug/deps/sim-2bea87461563070c.d: crates/engine/tests/sim.rs Cargo.toml

/root/repo/target/debug/deps/libsim-2bea87461563070c.rmeta: crates/engine/tests/sim.rs Cargo.toml

crates/engine/tests/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
