/root/repo/target/debug/deps/sim-b82a048ac5462b04.d: crates/engine/tests/sim.rs

/root/repo/target/debug/deps/sim-b82a048ac5462b04: crates/engine/tests/sim.rs

crates/engine/tests/sim.rs:
