/root/repo/target/debug/deps/sim-c15edbd783811e6c.d: crates/engine/tests/sim.rs

/root/repo/target/debug/deps/sim-c15edbd783811e6c: crates/engine/tests/sim.rs

crates/engine/tests/sim.rs:
