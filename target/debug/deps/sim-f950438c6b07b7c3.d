/root/repo/target/debug/deps/sim-f950438c6b07b7c3.d: crates/engine/tests/sim.rs Cargo.toml

/root/repo/target/debug/deps/libsim-f950438c6b07b7c3.rmeta: crates/engine/tests/sim.rs Cargo.toml

crates/engine/tests/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
