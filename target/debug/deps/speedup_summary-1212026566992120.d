/root/repo/target/debug/deps/speedup_summary-1212026566992120.d: crates/bench/src/bin/speedup_summary.rs

/root/repo/target/debug/deps/speedup_summary-1212026566992120: crates/bench/src/bin/speedup_summary.rs

crates/bench/src/bin/speedup_summary.rs:
