/root/repo/target/debug/deps/speedup_summary-182e7cb53c1849b6.d: crates/bench/src/bin/speedup_summary.rs

/root/repo/target/debug/deps/speedup_summary-182e7cb53c1849b6: crates/bench/src/bin/speedup_summary.rs

crates/bench/src/bin/speedup_summary.rs:
