/root/repo/target/debug/deps/speedup_summary-498bc10ad69493ea.d: crates/bench/src/bin/speedup_summary.rs

/root/repo/target/debug/deps/speedup_summary-498bc10ad69493ea: crates/bench/src/bin/speedup_summary.rs

crates/bench/src/bin/speedup_summary.rs:
