/root/repo/target/debug/deps/speedup_summary-632e464115cde103.d: crates/bench/src/bin/speedup_summary.rs

/root/repo/target/debug/deps/speedup_summary-632e464115cde103: crates/bench/src/bin/speedup_summary.rs

crates/bench/src/bin/speedup_summary.rs:
