/root/repo/target/debug/deps/speedup_summary-6428c955574ef974.d: crates/bench/src/bin/speedup_summary.rs Cargo.toml

/root/repo/target/debug/deps/libspeedup_summary-6428c955574ef974.rmeta: crates/bench/src/bin/speedup_summary.rs Cargo.toml

crates/bench/src/bin/speedup_summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
