/root/repo/target/debug/deps/speedup_summary-92308c3d1388c38e.d: crates/bench/src/bin/speedup_summary.rs Cargo.toml

/root/repo/target/debug/deps/libspeedup_summary-92308c3d1388c38e.rmeta: crates/bench/src/bin/speedup_summary.rs Cargo.toml

crates/bench/src/bin/speedup_summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
