/root/repo/target/debug/deps/speedup_summary-e2bd3a556a17ab56.d: crates/bench/src/bin/speedup_summary.rs

/root/repo/target/debug/deps/speedup_summary-e2bd3a556a17ab56: crates/bench/src/bin/speedup_summary.rs

crates/bench/src/bin/speedup_summary.rs:
