/root/repo/target/debug/deps/speedup_summary-f7c51d5d5f8e8054.d: crates/bench/src/bin/speedup_summary.rs Cargo.toml

/root/repo/target/debug/deps/libspeedup_summary-f7c51d5d5f8e8054.rmeta: crates/bench/src/bin/speedup_summary.rs Cargo.toml

crates/bench/src/bin/speedup_summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
