/root/repo/target/debug/deps/speedup_summary-fd1aeda6ce705787.d: crates/bench/src/bin/speedup_summary.rs

/root/repo/target/debug/deps/speedup_summary-fd1aeda6ce705787: crates/bench/src/bin/speedup_summary.rs

crates/bench/src/bin/speedup_summary.rs:
