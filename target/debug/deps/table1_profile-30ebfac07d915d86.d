/root/repo/target/debug/deps/table1_profile-30ebfac07d915d86.d: crates/bench/src/bin/table1_profile.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_profile-30ebfac07d915d86.rmeta: crates/bench/src/bin/table1_profile.rs Cargo.toml

crates/bench/src/bin/table1_profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
