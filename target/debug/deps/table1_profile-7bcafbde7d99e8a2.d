/root/repo/target/debug/deps/table1_profile-7bcafbde7d99e8a2.d: crates/bench/src/bin/table1_profile.rs

/root/repo/target/debug/deps/table1_profile-7bcafbde7d99e8a2: crates/bench/src/bin/table1_profile.rs

crates/bench/src/bin/table1_profile.rs:
