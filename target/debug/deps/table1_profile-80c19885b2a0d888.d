/root/repo/target/debug/deps/table1_profile-80c19885b2a0d888.d: crates/bench/src/bin/table1_profile.rs

/root/repo/target/debug/deps/table1_profile-80c19885b2a0d888: crates/bench/src/bin/table1_profile.rs

crates/bench/src/bin/table1_profile.rs:
