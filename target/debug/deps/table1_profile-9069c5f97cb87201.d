/root/repo/target/debug/deps/table1_profile-9069c5f97cb87201.d: crates/bench/src/bin/table1_profile.rs

/root/repo/target/debug/deps/table1_profile-9069c5f97cb87201: crates/bench/src/bin/table1_profile.rs

crates/bench/src/bin/table1_profile.rs:
