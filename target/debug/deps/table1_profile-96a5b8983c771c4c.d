/root/repo/target/debug/deps/table1_profile-96a5b8983c771c4c.d: crates/bench/src/bin/table1_profile.rs

/root/repo/target/debug/deps/table1_profile-96a5b8983c771c4c: crates/bench/src/bin/table1_profile.rs

crates/bench/src/bin/table1_profile.rs:
