/root/repo/target/debug/deps/table1_profile-ae65bed45582e76f.d: crates/bench/src/bin/table1_profile.rs

/root/repo/target/debug/deps/table1_profile-ae65bed45582e76f: crates/bench/src/bin/table1_profile.rs

crates/bench/src/bin/table1_profile.rs:
