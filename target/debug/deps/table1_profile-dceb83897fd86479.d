/root/repo/target/debug/deps/table1_profile-dceb83897fd86479.d: crates/bench/src/bin/table1_profile.rs

/root/repo/target/debug/deps/table1_profile-dceb83897fd86479: crates/bench/src/bin/table1_profile.rs

crates/bench/src/bin/table1_profile.rs:
