/root/repo/target/debug/deps/table2_matrix-2b4ac798b944b745.d: crates/bench/src/bin/table2_matrix.rs

/root/repo/target/debug/deps/table2_matrix-2b4ac798b944b745: crates/bench/src/bin/table2_matrix.rs

crates/bench/src/bin/table2_matrix.rs:
