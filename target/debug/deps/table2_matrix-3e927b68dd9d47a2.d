/root/repo/target/debug/deps/table2_matrix-3e927b68dd9d47a2.d: crates/bench/src/bin/table2_matrix.rs

/root/repo/target/debug/deps/table2_matrix-3e927b68dd9d47a2: crates/bench/src/bin/table2_matrix.rs

crates/bench/src/bin/table2_matrix.rs:
