/root/repo/target/debug/deps/table2_matrix-76317efb412e9629.d: crates/bench/src/bin/table2_matrix.rs

/root/repo/target/debug/deps/table2_matrix-76317efb412e9629: crates/bench/src/bin/table2_matrix.rs

crates/bench/src/bin/table2_matrix.rs:
