/root/repo/target/debug/deps/table2_matrix-b6485c0f2edc182a.d: crates/bench/src/bin/table2_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_matrix-b6485c0f2edc182a.rmeta: crates/bench/src/bin/table2_matrix.rs Cargo.toml

crates/bench/src/bin/table2_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
