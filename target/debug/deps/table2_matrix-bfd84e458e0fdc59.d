/root/repo/target/debug/deps/table2_matrix-bfd84e458e0fdc59.d: crates/bench/src/bin/table2_matrix.rs

/root/repo/target/debug/deps/table2_matrix-bfd84e458e0fdc59: crates/bench/src/bin/table2_matrix.rs

crates/bench/src/bin/table2_matrix.rs:
