/root/repo/target/debug/deps/table2_matrix-cd31d93d24dae8ed.d: crates/bench/src/bin/table2_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_matrix-cd31d93d24dae8ed.rmeta: crates/bench/src/bin/table2_matrix.rs Cargo.toml

crates/bench/src/bin/table2_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
