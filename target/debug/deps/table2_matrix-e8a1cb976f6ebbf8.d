/root/repo/target/debug/deps/table2_matrix-e8a1cb976f6ebbf8.d: crates/bench/src/bin/table2_matrix.rs

/root/repo/target/debug/deps/table2_matrix-e8a1cb976f6ebbf8: crates/bench/src/bin/table2_matrix.rs

crates/bench/src/bin/table2_matrix.rs:
