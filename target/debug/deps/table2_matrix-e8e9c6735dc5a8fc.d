/root/repo/target/debug/deps/table2_matrix-e8e9c6735dc5a8fc.d: crates/bench/src/bin/table2_matrix.rs

/root/repo/target/debug/deps/table2_matrix-e8e9c6735dc5a8fc: crates/bench/src/bin/table2_matrix.rs

crates/bench/src/bin/table2_matrix.rs:
