/root/repo/target/debug/deps/table2_matrix-fc75a530d87935bc.d: crates/bench/src/bin/table2_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_matrix-fc75a530d87935bc.rmeta: crates/bench/src/bin/table2_matrix.rs Cargo.toml

crates/bench/src/bin/table2_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
