/root/repo/target/debug/deps/trace_plane-4d5b2c363b40aff5.d: tests/trace_plane.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_plane-4d5b2c363b40aff5.rmeta: tests/trace_plane.rs Cargo.toml

tests/trace_plane.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
