/root/repo/target/debug/deps/trace_plane-8e0c414d02812e87.d: tests/trace_plane.rs

/root/repo/target/debug/deps/trace_plane-8e0c414d02812e87: tests/trace_plane.rs

tests/trace_plane.rs:
