/root/repo/target/debug/deps/trace_validate-242b6edf2023eff4.d: crates/trace/src/bin/trace_validate.rs

/root/repo/target/debug/deps/trace_validate-242b6edf2023eff4: crates/trace/src/bin/trace_validate.rs

crates/trace/src/bin/trace_validate.rs:
