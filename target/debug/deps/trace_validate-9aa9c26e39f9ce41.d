/root/repo/target/debug/deps/trace_validate-9aa9c26e39f9ce41.d: crates/trace/src/bin/trace_validate.rs

/root/repo/target/debug/deps/trace_validate-9aa9c26e39f9ce41: crates/trace/src/bin/trace_validate.rs

crates/trace/src/bin/trace_validate.rs:
