/root/repo/target/debug/deps/trace_validate-c37f16f5fbd756f5.d: crates/trace/src/bin/trace_validate.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_validate-c37f16f5fbd756f5.rmeta: crates/trace/src/bin/trace_validate.rs Cargo.toml

crates/trace/src/bin/trace_validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
