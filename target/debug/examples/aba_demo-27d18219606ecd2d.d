/root/repo/target/debug/examples/aba_demo-27d18219606ecd2d.d: examples/aba_demo.rs Cargo.toml

/root/repo/target/debug/examples/libaba_demo-27d18219606ecd2d.rmeta: examples/aba_demo.rs Cargo.toml

examples/aba_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
