/root/repo/target/debug/examples/aba_demo-757e10088c1d22a1.d: examples/aba_demo.rs

/root/repo/target/debug/examples/aba_demo-757e10088c1d22a1: examples/aba_demo.rs

examples/aba_demo.rs:
