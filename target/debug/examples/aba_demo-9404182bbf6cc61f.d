/root/repo/target/debug/examples/aba_demo-9404182bbf6cc61f.d: examples/aba_demo.rs

/root/repo/target/debug/examples/aba_demo-9404182bbf6cc61f: examples/aba_demo.rs

examples/aba_demo.rs:
