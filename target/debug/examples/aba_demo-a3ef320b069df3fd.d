/root/repo/target/debug/examples/aba_demo-a3ef320b069df3fd.d: examples/aba_demo.rs

/root/repo/target/debug/examples/aba_demo-a3ef320b069df3fd: examples/aba_demo.rs

examples/aba_demo.rs:
