/root/repo/target/debug/examples/litmus_matrix-002c6d8d245538f5.d: examples/litmus_matrix.rs

/root/repo/target/debug/examples/litmus_matrix-002c6d8d245538f5: examples/litmus_matrix.rs

examples/litmus_matrix.rs:
