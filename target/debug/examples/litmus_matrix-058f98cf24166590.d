/root/repo/target/debug/examples/litmus_matrix-058f98cf24166590.d: examples/litmus_matrix.rs Cargo.toml

/root/repo/target/debug/examples/liblitmus_matrix-058f98cf24166590.rmeta: examples/litmus_matrix.rs Cargo.toml

examples/litmus_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
