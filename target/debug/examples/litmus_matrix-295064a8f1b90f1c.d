/root/repo/target/debug/examples/litmus_matrix-295064a8f1b90f1c.d: examples/litmus_matrix.rs

/root/repo/target/debug/examples/litmus_matrix-295064a8f1b90f1c: examples/litmus_matrix.rs

examples/litmus_matrix.rs:
