/root/repo/target/debug/examples/litmus_matrix-4543e9f9e4dfd082.d: examples/litmus_matrix.rs

/root/repo/target/debug/examples/litmus_matrix-4543e9f9e4dfd082: examples/litmus_matrix.rs

examples/litmus_matrix.rs:
