/root/repo/target/debug/examples/litmus_matrix-6e5db26751b47a03.d: examples/litmus_matrix.rs Cargo.toml

/root/repo/target/debug/examples/liblitmus_matrix-6e5db26751b47a03.rmeta: examples/litmus_matrix.rs Cargo.toml

examples/litmus_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
