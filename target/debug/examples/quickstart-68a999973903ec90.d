/root/repo/target/debug/examples/quickstart-68a999973903ec90.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-68a999973903ec90: examples/quickstart.rs

examples/quickstart.rs:
