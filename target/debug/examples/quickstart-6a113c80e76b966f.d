/root/repo/target/debug/examples/quickstart-6a113c80e76b966f.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-6a113c80e76b966f.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
