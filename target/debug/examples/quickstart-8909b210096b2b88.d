/root/repo/target/debug/examples/quickstart-8909b210096b2b88.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-8909b210096b2b88: examples/quickstart.rs

examples/quickstart.rs:
