/root/repo/target/debug/examples/quickstart-98e4d44f9c52aee6.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-98e4d44f9c52aee6: examples/quickstart.rs

examples/quickstart.rs:
