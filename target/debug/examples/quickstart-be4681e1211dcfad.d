/root/repo/target/debug/examples/quickstart-be4681e1211dcfad.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-be4681e1211dcfad.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
