/root/repo/target/debug/examples/scheme_tour-02605dc5d9e03cbc.d: examples/scheme_tour.rs

/root/repo/target/debug/examples/scheme_tour-02605dc5d9e03cbc: examples/scheme_tour.rs

examples/scheme_tour.rs:
