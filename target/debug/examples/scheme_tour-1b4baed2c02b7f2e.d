/root/repo/target/debug/examples/scheme_tour-1b4baed2c02b7f2e.d: examples/scheme_tour.rs Cargo.toml

/root/repo/target/debug/examples/libscheme_tour-1b4baed2c02b7f2e.rmeta: examples/scheme_tour.rs Cargo.toml

examples/scheme_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
