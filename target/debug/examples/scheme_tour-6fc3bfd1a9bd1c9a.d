/root/repo/target/debug/examples/scheme_tour-6fc3bfd1a9bd1c9a.d: examples/scheme_tour.rs Cargo.toml

/root/repo/target/debug/examples/libscheme_tour-6fc3bfd1a9bd1c9a.rmeta: examples/scheme_tour.rs Cargo.toml

examples/scheme_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
