/root/repo/target/debug/examples/scheme_tour-997cfaf0dce51253.d: examples/scheme_tour.rs

/root/repo/target/debug/examples/scheme_tour-997cfaf0dce51253: examples/scheme_tour.rs

examples/scheme_tour.rs:
