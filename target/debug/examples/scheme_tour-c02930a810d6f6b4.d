/root/repo/target/debug/examples/scheme_tour-c02930a810d6f6b4.d: examples/scheme_tour.rs

/root/repo/target/debug/examples/scheme_tour-c02930a810d6f6b4: examples/scheme_tour.rs

examples/scheme_tour.rs:
