/root/repo/target/debug/examples/scheme_tour-c310f5f2be7be2e1.d: examples/scheme_tour.rs Cargo.toml

/root/repo/target/debug/examples/libscheme_tour-c310f5f2be7be2e1.rmeta: examples/scheme_tour.rs Cargo.toml

examples/scheme_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
