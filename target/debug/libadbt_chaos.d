/root/repo/target/debug/libadbt_chaos.rlib: /root/repo/crates/chaos/src/lib.rs
