/root/repo/target/debug/libadbt_mmu.rlib: /root/repo/crates/mmu/src/fault.rs /root/repo/crates/mmu/src/lib.rs /root/repo/crates/mmu/src/mem.rs /root/repo/crates/mmu/src/space.rs
