/root/repo/target/debug/libadbt_sync.rlib: /root/repo/crates/sync/src/lib.rs
