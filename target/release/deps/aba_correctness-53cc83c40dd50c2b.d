/root/repo/target/release/deps/aba_correctness-53cc83c40dd50c2b.d: crates/bench/src/bin/aba_correctness.rs

/root/repo/target/release/deps/aba_correctness-53cc83c40dd50c2b: crates/bench/src/bin/aba_correctness.rs

crates/bench/src/bin/aba_correctness.rs:
