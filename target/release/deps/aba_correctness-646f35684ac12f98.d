/root/repo/target/release/deps/aba_correctness-646f35684ac12f98.d: crates/bench/src/bin/aba_correctness.rs

/root/repo/target/release/deps/aba_correctness-646f35684ac12f98: crates/bench/src/bin/aba_correctness.rs

crates/bench/src/bin/aba_correctness.rs:
