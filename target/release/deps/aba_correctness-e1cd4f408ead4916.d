/root/repo/target/release/deps/aba_correctness-e1cd4f408ead4916.d: crates/bench/src/bin/aba_correctness.rs

/root/repo/target/release/deps/aba_correctness-e1cd4f408ead4916: crates/bench/src/bin/aba_correctness.rs

crates/bench/src/bin/aba_correctness.rs:
