/root/repo/target/release/deps/ablation_fused-5e35049b10614904.d: crates/bench/src/bin/ablation_fused.rs

/root/repo/target/release/deps/ablation_fused-5e35049b10614904: crates/bench/src/bin/ablation_fused.rs

crates/bench/src/bin/ablation_fused.rs:
