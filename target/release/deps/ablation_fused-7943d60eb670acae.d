/root/repo/target/release/deps/ablation_fused-7943d60eb670acae.d: crates/bench/src/bin/ablation_fused.rs

/root/repo/target/release/deps/ablation_fused-7943d60eb670acae: crates/bench/src/bin/ablation_fused.rs

crates/bench/src/bin/ablation_fused.rs:
