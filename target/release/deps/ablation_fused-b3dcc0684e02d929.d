/root/repo/target/release/deps/ablation_fused-b3dcc0684e02d929.d: crates/bench/src/bin/ablation_fused.rs

/root/repo/target/release/deps/ablation_fused-b3dcc0684e02d929: crates/bench/src/bin/ablation_fused.rs

crates/bench/src/bin/ablation_fused.rs:
