/root/repo/target/release/deps/adbt-3491aaa7c6c4a7ee.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs

/root/repo/target/release/deps/libadbt-3491aaa7c6c4a7ee.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs

/root/repo/target/release/deps/libadbt-3491aaa7c6c4a7ee.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/harness.rs:
crates/core/src/machine.rs:
