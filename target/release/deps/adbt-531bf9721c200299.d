/root/repo/target/release/deps/adbt-531bf9721c200299.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs

/root/repo/target/release/deps/libadbt-531bf9721c200299.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs

/root/repo/target/release/deps/libadbt-531bf9721c200299.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/harness.rs:
crates/core/src/machine.rs:
