/root/repo/target/release/deps/adbt-d78dfa12ad0a2377.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs

/root/repo/target/release/deps/libadbt-d78dfa12ad0a2377.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs

/root/repo/target/release/deps/libadbt-d78dfa12ad0a2377.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/harness.rs crates/core/src/machine.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/harness.rs:
crates/core/src/machine.rs:
