/root/repo/target/release/deps/adbt_bench-25d88ff812557c79.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libadbt_bench-25d88ff812557c79.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libadbt_bench-25d88ff812557c79.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
