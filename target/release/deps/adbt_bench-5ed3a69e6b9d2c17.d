/root/repo/target/release/deps/adbt_bench-5ed3a69e6b9d2c17.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libadbt_bench-5ed3a69e6b9d2c17.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libadbt_bench-5ed3a69e6b9d2c17.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
