/root/repo/target/release/deps/adbt_bench-bcc95945d8780f0d.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libadbt_bench-bcc95945d8780f0d.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libadbt_bench-bcc95945d8780f0d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
