/root/repo/target/release/deps/adbt_chaos-76e86d46eae06183.d: crates/chaos/src/lib.rs

/root/repo/target/release/deps/libadbt_chaos-76e86d46eae06183.rlib: crates/chaos/src/lib.rs

/root/repo/target/release/deps/libadbt_chaos-76e86d46eae06183.rmeta: crates/chaos/src/lib.rs

crates/chaos/src/lib.rs:
