/root/repo/target/release/deps/adbt_check-4eb4ca632b704cd4.d: crates/check/src/bin/adbt_check.rs

/root/repo/target/release/deps/adbt_check-4eb4ca632b704cd4: crates/check/src/bin/adbt_check.rs

crates/check/src/bin/adbt_check.rs:
