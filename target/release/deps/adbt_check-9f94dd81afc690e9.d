/root/repo/target/release/deps/adbt_check-9f94dd81afc690e9.d: crates/check/src/bin/adbt_check.rs

/root/repo/target/release/deps/adbt_check-9f94dd81afc690e9: crates/check/src/bin/adbt_check.rs

crates/check/src/bin/adbt_check.rs:
