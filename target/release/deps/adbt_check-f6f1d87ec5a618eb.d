/root/repo/target/release/deps/adbt_check-f6f1d87ec5a618eb.d: crates/check/src/lib.rs crates/check/src/explore.rs crates/check/src/oracle.rs

/root/repo/target/release/deps/libadbt_check-f6f1d87ec5a618eb.rlib: crates/check/src/lib.rs crates/check/src/explore.rs crates/check/src/oracle.rs

/root/repo/target/release/deps/libadbt_check-f6f1d87ec5a618eb.rmeta: crates/check/src/lib.rs crates/check/src/explore.rs crates/check/src/oracle.rs

crates/check/src/lib.rs:
crates/check/src/explore.rs:
crates/check/src/oracle.rs:
