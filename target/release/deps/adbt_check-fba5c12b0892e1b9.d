/root/repo/target/release/deps/adbt_check-fba5c12b0892e1b9.d: crates/check/src/lib.rs crates/check/src/explore.rs crates/check/src/export.rs crates/check/src/oracle.rs

/root/repo/target/release/deps/libadbt_check-fba5c12b0892e1b9.rlib: crates/check/src/lib.rs crates/check/src/explore.rs crates/check/src/export.rs crates/check/src/oracle.rs

/root/repo/target/release/deps/libadbt_check-fba5c12b0892e1b9.rmeta: crates/check/src/lib.rs crates/check/src/explore.rs crates/check/src/export.rs crates/check/src/oracle.rs

crates/check/src/lib.rs:
crates/check/src/explore.rs:
crates/check/src/export.rs:
crates/check/src/oracle.rs:
