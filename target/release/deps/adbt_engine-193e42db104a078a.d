/root/repo/target/release/deps/adbt_engine-193e42db104a078a.d: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/exclusive.rs crates/engine/src/frontend.rs crates/engine/src/interp.rs crates/engine/src/machine.rs crates/engine/src/runtime.rs crates/engine/src/sched.rs crates/engine/src/scheme.rs crates/engine/src/state.rs crates/engine/src/stats.rs crates/engine/src/store_test.rs crates/engine/src/watchdog.rs

/root/repo/target/release/deps/libadbt_engine-193e42db104a078a.rlib: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/exclusive.rs crates/engine/src/frontend.rs crates/engine/src/interp.rs crates/engine/src/machine.rs crates/engine/src/runtime.rs crates/engine/src/sched.rs crates/engine/src/scheme.rs crates/engine/src/state.rs crates/engine/src/stats.rs crates/engine/src/store_test.rs crates/engine/src/watchdog.rs

/root/repo/target/release/deps/libadbt_engine-193e42db104a078a.rmeta: crates/engine/src/lib.rs crates/engine/src/cache.rs crates/engine/src/exclusive.rs crates/engine/src/frontend.rs crates/engine/src/interp.rs crates/engine/src/machine.rs crates/engine/src/runtime.rs crates/engine/src/sched.rs crates/engine/src/scheme.rs crates/engine/src/state.rs crates/engine/src/stats.rs crates/engine/src/store_test.rs crates/engine/src/watchdog.rs

crates/engine/src/lib.rs:
crates/engine/src/cache.rs:
crates/engine/src/exclusive.rs:
crates/engine/src/frontend.rs:
crates/engine/src/interp.rs:
crates/engine/src/machine.rs:
crates/engine/src/runtime.rs:
crates/engine/src/sched.rs:
crates/engine/src/scheme.rs:
crates/engine/src/state.rs:
crates/engine/src/stats.rs:
crates/engine/src/store_test.rs:
crates/engine/src/watchdog.rs:
