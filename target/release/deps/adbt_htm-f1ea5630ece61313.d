/root/repo/target/release/deps/adbt_htm-f1ea5630ece61313.d: crates/htm/src/lib.rs crates/htm/src/domain.rs crates/htm/src/txn.rs

/root/repo/target/release/deps/libadbt_htm-f1ea5630ece61313.rlib: crates/htm/src/lib.rs crates/htm/src/domain.rs crates/htm/src/txn.rs

/root/repo/target/release/deps/libadbt_htm-f1ea5630ece61313.rmeta: crates/htm/src/lib.rs crates/htm/src/domain.rs crates/htm/src/txn.rs

crates/htm/src/lib.rs:
crates/htm/src/domain.rs:
crates/htm/src/txn.rs:
