/root/repo/target/release/deps/adbt_ir-3d02576e22d38ba3.d: crates/ir/src/lib.rs crates/ir/src/block.rs crates/ir/src/op.rs crates/ir/src/printer.rs

/root/repo/target/release/deps/libadbt_ir-3d02576e22d38ba3.rlib: crates/ir/src/lib.rs crates/ir/src/block.rs crates/ir/src/op.rs crates/ir/src/printer.rs

/root/repo/target/release/deps/libadbt_ir-3d02576e22d38ba3.rmeta: crates/ir/src/lib.rs crates/ir/src/block.rs crates/ir/src/op.rs crates/ir/src/printer.rs

crates/ir/src/lib.rs:
crates/ir/src/block.rs:
crates/ir/src/op.rs:
crates/ir/src/printer.rs:
