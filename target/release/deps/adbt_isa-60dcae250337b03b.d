/root/repo/target/release/deps/adbt_isa-60dcae250337b03b.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/cond.rs crates/isa/src/decode.rs crates/isa/src/disasm_impl.rs crates/isa/src/encode.rs crates/isa/src/error.rs crates/isa/src/insn.rs crates/isa/src/reg.rs

/root/repo/target/release/deps/libadbt_isa-60dcae250337b03b.rlib: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/cond.rs crates/isa/src/decode.rs crates/isa/src/disasm_impl.rs crates/isa/src/encode.rs crates/isa/src/error.rs crates/isa/src/insn.rs crates/isa/src/reg.rs

/root/repo/target/release/deps/libadbt_isa-60dcae250337b03b.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/cond.rs crates/isa/src/decode.rs crates/isa/src/disasm_impl.rs crates/isa/src/encode.rs crates/isa/src/error.rs crates/isa/src/insn.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/cond.rs:
crates/isa/src/decode.rs:
crates/isa/src/disasm_impl.rs:
crates/isa/src/encode.rs:
crates/isa/src/error.rs:
crates/isa/src/insn.rs:
crates/isa/src/reg.rs:
