/root/repo/target/release/deps/adbt_mmu-d0b5c7b7212771d3.d: crates/mmu/src/lib.rs crates/mmu/src/fault.rs crates/mmu/src/mem.rs crates/mmu/src/space.rs

/root/repo/target/release/deps/libadbt_mmu-d0b5c7b7212771d3.rlib: crates/mmu/src/lib.rs crates/mmu/src/fault.rs crates/mmu/src/mem.rs crates/mmu/src/space.rs

/root/repo/target/release/deps/libadbt_mmu-d0b5c7b7212771d3.rmeta: crates/mmu/src/lib.rs crates/mmu/src/fault.rs crates/mmu/src/mem.rs crates/mmu/src/space.rs

crates/mmu/src/lib.rs:
crates/mmu/src/fault.rs:
crates/mmu/src/mem.rs:
crates/mmu/src/space.rs:
