/root/repo/target/release/deps/adbt_run-1e8399744f86aff1.d: crates/core/src/bin/adbt_run.rs

/root/repo/target/release/deps/adbt_run-1e8399744f86aff1: crates/core/src/bin/adbt_run.rs

crates/core/src/bin/adbt_run.rs:
