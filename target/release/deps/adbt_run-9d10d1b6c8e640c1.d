/root/repo/target/release/deps/adbt_run-9d10d1b6c8e640c1.d: crates/core/src/bin/adbt_run.rs

/root/repo/target/release/deps/adbt_run-9d10d1b6c8e640c1: crates/core/src/bin/adbt_run.rs

crates/core/src/bin/adbt_run.rs:
