/root/repo/target/release/deps/adbt_run-bfc86f73414a4f49.d: crates/core/src/bin/adbt_run.rs

/root/repo/target/release/deps/adbt_run-bfc86f73414a4f49: crates/core/src/bin/adbt_run.rs

crates/core/src/bin/adbt_run.rs:
