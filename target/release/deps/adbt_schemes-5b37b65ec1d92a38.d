/root/repo/target/release/deps/adbt_schemes-5b37b65ec1d92a38.d: crates/schemes/src/lib.rs crates/schemes/src/hst.rs crates/schemes/src/pico_cas.rs crates/schemes/src/pico_htm.rs crates/schemes/src/pico_st.rs crates/schemes/src/pst.rs

/root/repo/target/release/deps/libadbt_schemes-5b37b65ec1d92a38.rlib: crates/schemes/src/lib.rs crates/schemes/src/hst.rs crates/schemes/src/pico_cas.rs crates/schemes/src/pico_htm.rs crates/schemes/src/pico_st.rs crates/schemes/src/pst.rs

/root/repo/target/release/deps/libadbt_schemes-5b37b65ec1d92a38.rmeta: crates/schemes/src/lib.rs crates/schemes/src/hst.rs crates/schemes/src/pico_cas.rs crates/schemes/src/pico_htm.rs crates/schemes/src/pico_st.rs crates/schemes/src/pst.rs

crates/schemes/src/lib.rs:
crates/schemes/src/hst.rs:
crates/schemes/src/pico_cas.rs:
crates/schemes/src/pico_htm.rs:
crates/schemes/src/pico_st.rs:
crates/schemes/src/pst.rs:
