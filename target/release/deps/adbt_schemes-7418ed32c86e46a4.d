/root/repo/target/release/deps/adbt_schemes-7418ed32c86e46a4.d: crates/schemes/src/lib.rs crates/schemes/src/hst.rs crates/schemes/src/pico_cas.rs crates/schemes/src/pico_htm.rs crates/schemes/src/pico_st.rs crates/schemes/src/pst.rs

/root/repo/target/release/deps/libadbt_schemes-7418ed32c86e46a4.rlib: crates/schemes/src/lib.rs crates/schemes/src/hst.rs crates/schemes/src/pico_cas.rs crates/schemes/src/pico_htm.rs crates/schemes/src/pico_st.rs crates/schemes/src/pst.rs

/root/repo/target/release/deps/libadbt_schemes-7418ed32c86e46a4.rmeta: crates/schemes/src/lib.rs crates/schemes/src/hst.rs crates/schemes/src/pico_cas.rs crates/schemes/src/pico_htm.rs crates/schemes/src/pico_st.rs crates/schemes/src/pst.rs

crates/schemes/src/lib.rs:
crates/schemes/src/hst.rs:
crates/schemes/src/pico_cas.rs:
crates/schemes/src/pico_htm.rs:
crates/schemes/src/pico_st.rs:
crates/schemes/src/pst.rs:
