/root/repo/target/release/deps/adbt_schemes-f595704cb4f4128e.d: crates/schemes/src/lib.rs crates/schemes/src/hst.rs crates/schemes/src/pico_cas.rs crates/schemes/src/pico_htm.rs crates/schemes/src/pico_st.rs crates/schemes/src/pst.rs

/root/repo/target/release/deps/libadbt_schemes-f595704cb4f4128e.rlib: crates/schemes/src/lib.rs crates/schemes/src/hst.rs crates/schemes/src/pico_cas.rs crates/schemes/src/pico_htm.rs crates/schemes/src/pico_st.rs crates/schemes/src/pst.rs

/root/repo/target/release/deps/libadbt_schemes-f595704cb4f4128e.rmeta: crates/schemes/src/lib.rs crates/schemes/src/hst.rs crates/schemes/src/pico_cas.rs crates/schemes/src/pico_htm.rs crates/schemes/src/pico_st.rs crates/schemes/src/pst.rs

crates/schemes/src/lib.rs:
crates/schemes/src/hst.rs:
crates/schemes/src/pico_cas.rs:
crates/schemes/src/pico_htm.rs:
crates/schemes/src/pico_st.rs:
crates/schemes/src/pst.rs:
