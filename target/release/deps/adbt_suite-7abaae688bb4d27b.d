/root/repo/target/release/deps/adbt_suite-7abaae688bb4d27b.d: src/lib.rs

/root/repo/target/release/deps/libadbt_suite-7abaae688bb4d27b.rlib: src/lib.rs

/root/repo/target/release/deps/libadbt_suite-7abaae688bb4d27b.rmeta: src/lib.rs

src/lib.rs:
