/root/repo/target/release/deps/adbt_suite-d502f404e3447648.d: src/lib.rs

/root/repo/target/release/deps/libadbt_suite-d502f404e3447648.rlib: src/lib.rs

/root/repo/target/release/deps/libadbt_suite-d502f404e3447648.rmeta: src/lib.rs

src/lib.rs:
