/root/repo/target/release/deps/adbt_suite-f0488cecb77dae74.d: src/lib.rs

/root/repo/target/release/deps/libadbt_suite-f0488cecb77dae74.rlib: src/lib.rs

/root/repo/target/release/deps/libadbt_suite-f0488cecb77dae74.rmeta: src/lib.rs

src/lib.rs:
