/root/repo/target/release/deps/adbt_sync-8f1edd17e651eb76.d: crates/sync/src/lib.rs

/root/repo/target/release/deps/libadbt_sync-8f1edd17e651eb76.rlib: crates/sync/src/lib.rs

/root/repo/target/release/deps/libadbt_sync-8f1edd17e651eb76.rmeta: crates/sync/src/lib.rs

crates/sync/src/lib.rs:
