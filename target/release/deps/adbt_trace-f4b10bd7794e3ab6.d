/root/repo/target/release/deps/adbt_trace-f4b10bd7794e3ab6.d: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/hist.rs crates/trace/src/validate.rs

/root/repo/target/release/deps/libadbt_trace-f4b10bd7794e3ab6.rlib: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/hist.rs crates/trace/src/validate.rs

/root/repo/target/release/deps/libadbt_trace-f4b10bd7794e3ab6.rmeta: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/hist.rs crates/trace/src/validate.rs

crates/trace/src/lib.rs:
crates/trace/src/chrome.rs:
crates/trace/src/hist.rs:
crates/trace/src/validate.rs:
