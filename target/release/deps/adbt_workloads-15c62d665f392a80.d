/root/repo/target/release/deps/adbt_workloads-15c62d665f392a80.d: crates/workloads/src/lib.rs crates/workloads/src/interleave.rs crates/workloads/src/litmus.rs crates/workloads/src/parsec.rs crates/workloads/src/rt.rs crates/workloads/src/stack.rs

/root/repo/target/release/deps/libadbt_workloads-15c62d665f392a80.rlib: crates/workloads/src/lib.rs crates/workloads/src/interleave.rs crates/workloads/src/litmus.rs crates/workloads/src/parsec.rs crates/workloads/src/rt.rs crates/workloads/src/stack.rs

/root/repo/target/release/deps/libadbt_workloads-15c62d665f392a80.rmeta: crates/workloads/src/lib.rs crates/workloads/src/interleave.rs crates/workloads/src/litmus.rs crates/workloads/src/parsec.rs crates/workloads/src/rt.rs crates/workloads/src/stack.rs

crates/workloads/src/lib.rs:
crates/workloads/src/interleave.rs:
crates/workloads/src/litmus.rs:
crates/workloads/src/parsec.rs:
crates/workloads/src/rt.rs:
crates/workloads/src/stack.rs:
