/root/repo/target/release/deps/chaos_soak-04f4040fab85fc9a.d: tests/chaos_soak.rs

/root/repo/target/release/deps/chaos_soak-04f4040fab85fc9a: tests/chaos_soak.rs

tests/chaos_soak.rs:
