/root/repo/target/release/deps/chaos_soak-94a8c18d7263ae2e.d: tests/chaos_soak.rs

/root/repo/target/release/deps/chaos_soak-94a8c18d7263ae2e: tests/chaos_soak.rs

tests/chaos_soak.rs:
