/root/repo/target/release/deps/cross_scheme-0745235d99297349.d: tests/cross_scheme.rs

/root/repo/target/release/deps/cross_scheme-0745235d99297349: tests/cross_scheme.rs

tests/cross_scheme.rs:
