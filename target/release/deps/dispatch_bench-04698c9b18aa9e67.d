/root/repo/target/release/deps/dispatch_bench-04698c9b18aa9e67.d: crates/bench/src/bin/dispatch_bench.rs

/root/repo/target/release/deps/dispatch_bench-04698c9b18aa9e67: crates/bench/src/bin/dispatch_bench.rs

crates/bench/src/bin/dispatch_bench.rs:
