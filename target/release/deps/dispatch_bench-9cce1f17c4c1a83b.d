/root/repo/target/release/deps/dispatch_bench-9cce1f17c4c1a83b.d: crates/bench/src/bin/dispatch_bench.rs

/root/repo/target/release/deps/dispatch_bench-9cce1f17c4c1a83b: crates/bench/src/bin/dispatch_bench.rs

crates/bench/src/bin/dispatch_bench.rs:
