/root/repo/target/release/deps/dispatch_bench-e229c7ad43515a02.d: crates/bench/src/bin/dispatch_bench.rs

/root/repo/target/release/deps/dispatch_bench-e229c7ad43515a02: crates/bench/src/bin/dispatch_bench.rs

crates/bench/src/bin/dispatch_bench.rs:
