/root/repo/target/release/deps/fig10_scalability-614cafbc3268ad90.d: crates/bench/src/bin/fig10_scalability.rs

/root/repo/target/release/deps/fig10_scalability-614cafbc3268ad90: crates/bench/src/bin/fig10_scalability.rs

crates/bench/src/bin/fig10_scalability.rs:
