/root/repo/target/release/deps/fig10_scalability-c0cc70e8255e74bc.d: crates/bench/src/bin/fig10_scalability.rs

/root/repo/target/release/deps/fig10_scalability-c0cc70e8255e74bc: crates/bench/src/bin/fig10_scalability.rs

crates/bench/src/bin/fig10_scalability.rs:
