/root/repo/target/release/deps/fig10_scalability-e594ea81cbca4fab.d: crates/bench/src/bin/fig10_scalability.rs

/root/repo/target/release/deps/fig10_scalability-e594ea81cbca4fab: crates/bench/src/bin/fig10_scalability.rs

crates/bench/src/bin/fig10_scalability.rs:
