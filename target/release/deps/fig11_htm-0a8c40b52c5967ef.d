/root/repo/target/release/deps/fig11_htm-0a8c40b52c5967ef.d: crates/bench/src/bin/fig11_htm.rs

/root/repo/target/release/deps/fig11_htm-0a8c40b52c5967ef: crates/bench/src/bin/fig11_htm.rs

crates/bench/src/bin/fig11_htm.rs:
