/root/repo/target/release/deps/fig11_htm-c250c93a2999a98e.d: crates/bench/src/bin/fig11_htm.rs

/root/repo/target/release/deps/fig11_htm-c250c93a2999a98e: crates/bench/src/bin/fig11_htm.rs

crates/bench/src/bin/fig11_htm.rs:
