/root/repo/target/release/deps/fig11_htm-f69469341f1b6b37.d: crates/bench/src/bin/fig11_htm.rs

/root/repo/target/release/deps/fig11_htm-f69469341f1b6b37: crates/bench/src/bin/fig11_htm.rs

crates/bench/src/bin/fig11_htm.rs:
