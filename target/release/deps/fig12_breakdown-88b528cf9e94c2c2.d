/root/repo/target/release/deps/fig12_breakdown-88b528cf9e94c2c2.d: crates/bench/src/bin/fig12_breakdown.rs

/root/repo/target/release/deps/fig12_breakdown-88b528cf9e94c2c2: crates/bench/src/bin/fig12_breakdown.rs

crates/bench/src/bin/fig12_breakdown.rs:
