/root/repo/target/release/deps/fig12_breakdown-bc45be5483f66022.d: crates/bench/src/bin/fig12_breakdown.rs

/root/repo/target/release/deps/fig12_breakdown-bc45be5483f66022: crates/bench/src/bin/fig12_breakdown.rs

crates/bench/src/bin/fig12_breakdown.rs:
