/root/repo/target/release/deps/fig12_breakdown-fa65d40eb7e3b7c7.d: crates/bench/src/bin/fig12_breakdown.rs

/root/repo/target/release/deps/fig12_breakdown-fa65d40eb7e3b7c7: crates/bench/src/bin/fig12_breakdown.rs

crates/bench/src/bin/fig12_breakdown.rs:
