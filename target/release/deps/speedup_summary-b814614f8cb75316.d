/root/repo/target/release/deps/speedup_summary-b814614f8cb75316.d: crates/bench/src/bin/speedup_summary.rs

/root/repo/target/release/deps/speedup_summary-b814614f8cb75316: crates/bench/src/bin/speedup_summary.rs

crates/bench/src/bin/speedup_summary.rs:
