/root/repo/target/release/deps/speedup_summary-d6b43926ffa7c2ea.d: crates/bench/src/bin/speedup_summary.rs

/root/repo/target/release/deps/speedup_summary-d6b43926ffa7c2ea: crates/bench/src/bin/speedup_summary.rs

crates/bench/src/bin/speedup_summary.rs:
