/root/repo/target/release/deps/speedup_summary-feda243c63ef654d.d: crates/bench/src/bin/speedup_summary.rs

/root/repo/target/release/deps/speedup_summary-feda243c63ef654d: crates/bench/src/bin/speedup_summary.rs

crates/bench/src/bin/speedup_summary.rs:
