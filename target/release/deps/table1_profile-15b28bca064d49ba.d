/root/repo/target/release/deps/table1_profile-15b28bca064d49ba.d: crates/bench/src/bin/table1_profile.rs

/root/repo/target/release/deps/table1_profile-15b28bca064d49ba: crates/bench/src/bin/table1_profile.rs

crates/bench/src/bin/table1_profile.rs:
