/root/repo/target/release/deps/table1_profile-565fb3b4ba2d6930.d: crates/bench/src/bin/table1_profile.rs

/root/repo/target/release/deps/table1_profile-565fb3b4ba2d6930: crates/bench/src/bin/table1_profile.rs

crates/bench/src/bin/table1_profile.rs:
