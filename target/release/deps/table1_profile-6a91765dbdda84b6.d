/root/repo/target/release/deps/table1_profile-6a91765dbdda84b6.d: crates/bench/src/bin/table1_profile.rs

/root/repo/target/release/deps/table1_profile-6a91765dbdda84b6: crates/bench/src/bin/table1_profile.rs

crates/bench/src/bin/table1_profile.rs:
