/root/repo/target/release/deps/table2_matrix-71072c7b628ef3f7.d: crates/bench/src/bin/table2_matrix.rs

/root/repo/target/release/deps/table2_matrix-71072c7b628ef3f7: crates/bench/src/bin/table2_matrix.rs

crates/bench/src/bin/table2_matrix.rs:
