/root/repo/target/release/deps/table2_matrix-722d5d635246565f.d: crates/bench/src/bin/table2_matrix.rs

/root/repo/target/release/deps/table2_matrix-722d5d635246565f: crates/bench/src/bin/table2_matrix.rs

crates/bench/src/bin/table2_matrix.rs:
