/root/repo/target/release/deps/table2_matrix-fb92eaea4fd1ea6f.d: crates/bench/src/bin/table2_matrix.rs

/root/repo/target/release/deps/table2_matrix-fb92eaea4fd1ea6f: crates/bench/src/bin/table2_matrix.rs

crates/bench/src/bin/table2_matrix.rs:
