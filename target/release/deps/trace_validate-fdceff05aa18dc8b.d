/root/repo/target/release/deps/trace_validate-fdceff05aa18dc8b.d: crates/trace/src/bin/trace_validate.rs

/root/repo/target/release/deps/trace_validate-fdceff05aa18dc8b: crates/trace/src/bin/trace_validate.rs

crates/trace/src/bin/trace_validate.rs:
