/root/repo/target/release/examples/quickstart-09a1f7f981e5cd71.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-09a1f7f981e5cd71: examples/quickstart.rs

examples/quickstart.rs:
