/root/repo/target/release/examples/quickstart-93e2aa009383addc.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-93e2aa009383addc: examples/quickstart.rs

examples/quickstart.rs:
