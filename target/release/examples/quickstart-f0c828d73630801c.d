/root/repo/target/release/examples/quickstart-f0c828d73630801c.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-f0c828d73630801c: examples/quickstart.rs

examples/quickstart.rs:
