/root/repo/target/release/libadbt_chaos.rlib: /root/repo/crates/chaos/src/lib.rs
