/root/repo/target/release/libadbt_sync.rlib: /root/repo/crates/sync/src/lib.rs
