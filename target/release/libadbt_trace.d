/root/repo/target/release/libadbt_trace.rlib: /root/repo/crates/trace/src/chrome.rs /root/repo/crates/trace/src/hist.rs /root/repo/crates/trace/src/lib.rs /root/repo/crates/trace/src/validate.rs
