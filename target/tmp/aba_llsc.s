    victim:
        mov32 r5, x
        ldrex r1, [r5]
        mov   r4, #777
        strex r2, r4, [r5]
        mov   r0, r2
        svc   #0

    attacker:
        mov32 r5, x
    flip:
        ldrex r1, [r5]
        mov   r6, #200
        strex r2, r6, [r5]
        cmp   r2, #0
        bne   flip
    flop:
        ldrex r1, [r5]
        mov   r6, #100
        strex r2, r6, [r5]
        cmp   r2, #0
        bne   flop
        mov   r0, #0
        svc   #0

        .align 4096
    x:
        .word 100
