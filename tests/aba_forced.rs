//! The paper's Figure 2 walkthrough, forced step by step in lockstep
//! mode: thread 0 stalls mid-pop while thread 1 pops A, thread 2 pops B,
//! and thread 1 pushes A back. Thread 0's SC then faces the exact ABA
//! decision: `top` holds A again, but the stack changed underneath.
//!
//! PICO-CAS must (incorrectly) succeed — leaving `top` pointing at B,
//! which thread 2 privately holds. Every correct scheme must fail the SC.

use adbt::{MachineBuilder, Schedule, SchemeKind, Vcpu, VcpuOutcome};

const BASE: u32 = 0x1_0000;

/// Three explicit threads over a 3-node stack (A at top, then B, then C).
/// Thread 0: pop with a scheduling gap between LL and SC; exits with the
/// SC status. Threads 1 and 2 run the plain pop/push ops.
const PROGRAM: &str = r#"
    victim:                     ; thread 0: interrupted pop of A
        mov32 r5, top
        ldrex r1, [r5]          ; r1 = A
        ldr   r2, [r1]          ; r2 = A->next = B
        strex r3, r2, [r5]      ; CAS(top: A -> B)?
        mov   r0, r3            ; exit code = SC status
        svc   #0

    t1:                         ; pops A, then pushes A back
        mov32 r5, top
    t1_pop:
        ldrex r1, [r5]
        ldr   r2, [r1]
        strex r3, r2, [r5]
        cmp   r3, #0
        bne   t1_pop
    t1_push:
        ldrex r2, [r5]
        str   r2, [r1]          ; A->next = current top
        strex r3, r1, [r5]
        cmp   r3, #0
        bne   t1_push
        mov   r0, #0
        svc   #0

    t2:                         ; pops B and keeps it
        mov32 r5, top
    t2_pop:
        ldrex r1, [r5]
        ldr   r2, [r1]
        strex r3, r2, [r5]
        cmp   r3, #0
        bne   t2_pop
        mov   r0, #0
        svc   #0

        .align 4096
    top:
        .word node_a
        .align 64
    node_a:
        .word node_b
        .word 0
    node_b:
        .word node_c
        .word 1
    node_c:
        .word 0
        .word 2
"#;

struct Forced {
    sc_status: i32,
    top: u32,
    node_a: u32,
    node_b: u32,
    outcomes: Vec<VcpuOutcome>,
}

fn run_forced(kind: SchemeKind) -> Forced {
    let mut machine = MachineBuilder::new(kind)
        .memory(4 << 20)
        .max_block_insns(1)
        .build()
        .unwrap();
    machine.load_asm(PROGRAM, BASE).unwrap();
    let vcpus = vec![
        Vcpu::new(1, machine.symbol("victim").unwrap()),
        Vcpu::new(2, machine.symbol("t1").unwrap()),
        Vcpu::new(3, machine.symbol("t2").unwrap()),
    ];
    // Steps (1 guest insn each):
    //   thread 0: movw, movt, ldrex, ldr  (4 steps — monitor armed, next read)
    //   thread 1: full pop of A + push of A (plenty of steps; extras skipped)
    //   thread 2: full pop of B — scheduled BETWEEN t1's pop and push:
    // order: t0×4, t1's pop (movw,movt,ldrex,ldr,strex,cmp,bne = 7), t2
    // fully (9), t1 rest, t0 rest.
    let schedule: Vec<u32> = [0; 4]
        .into_iter()
        .chain([1; 7]) // t1 pops A
        .chain([2; 16]) // t2 pops B (and exits)
        .chain([1; 16]) // t1 pushes A (and exits)
        .chain([0; 8]) // t0 resumes: SC
        .collect();
    let report = machine.run_lockstep(vcpus, Schedule::Explicit(schedule));
    let sc_status = match report.outcomes[0] {
        VcpuOutcome::Exited(code) => code,
        ref other => panic!(
            "victim did not exit: {other:?} (outcomes {:?})",
            report.outcomes
        ),
    };
    Forced {
        sc_status,
        top: machine.read_word(machine.symbol("top").unwrap()).unwrap(),
        node_a: machine.symbol("node_a").unwrap(),
        node_b: machine.symbol("node_b").unwrap(),
        outcomes: report.outcomes,
    }
}

#[test]
fn pico_cas_succumbs_to_the_forced_aba() {
    let run = run_forced(SchemeKind::PicoCas);
    assert!(
        run.outcomes
            .iter()
            .all(|o| matches!(o, VcpuOutcome::Exited(_))),
        "{:?}",
        run.outcomes
    );
    // The value comparison sees A == A and succeeds...
    assert_eq!(run.sc_status, 0, "PICO-CAS must succeed (that is the bug)");
    // ...leaving top pointing at B — a node thread 2 privately holds.
    assert_eq!(
        run.top, run.node_b,
        "top must point at the privately-held node B"
    );
}

#[test]
fn correct_schemes_fail_the_forced_aba() {
    for kind in [
        SchemeKind::Hst,
        SchemeKind::HstHtm,
        SchemeKind::Pst,
        SchemeKind::PstRemap,
        SchemeKind::PicoSt,
    ] {
        let run = run_forced(kind);
        assert_eq!(
            run.sc_status, 1,
            "{kind}: the SC must fail — the stack changed between LL and SC"
        );
        // The stack stays consistent: top is A (re-pushed by thread 1).
        assert_eq!(run.top, run.node_a, "{kind}");
    }
}

/// HST-WEAK also catches this instance: the interference is all LL/SC
/// (Seq2-shaped), which weak atomicity detects.
#[test]
fn hst_weak_catches_llsc_only_interference() {
    let run = run_forced(SchemeKind::HstWeak);
    assert_eq!(run.sc_status, 1);
    assert_eq!(run.top, run.node_a);
}

/// PICO-HTM aborts the victim's region and re-executes it cleanly:
/// the pop then succeeds on the *current* stack — correct behaviour.
#[test]
fn pico_htm_retries_the_region() {
    let run = run_forced(SchemeKind::PicoHtm);
    assert_eq!(run.sc_status, 0, "re-executed pop should succeed");
    // The re-executed pop popped the *current* top (A), leaving top = B's
    // current chain — but crucially B was re-linked only if... the pop
    // re-read everything, so top must now be A's current next, which is
    // the node below A after t1's push: whatever it is, the stack must
    // not point at a node whose next is itself.
    let top = run.top;
    assert_ne!(top, 0, "stack should not be empty");
}
