//! The paper's headline correctness experiment (E1, §IV-A): the
//! multi-threaded lock-free stack stays intact under every correct
//! scheme and corrupts under PICO-CAS.
//!
//! Runs on the simulated multicore (`run_stack_sim`) so the fine-grained
//! interleaving exists regardless of host core count and the results are
//! deterministic; a threaded smoke test keeps the real-OS-thread path
//! honest.

use adbt::harness::{run_stack, run_stack_sim, StackRun};
use adbt::workloads::stack::StackConfig;
use adbt::{SchemeKind, VcpuOutcome};

fn config() -> StackConfig {
    StackConfig {
        nodes: 8,
        ops_per_thread: 5_000,
        stall: 0,
        victim_stall: 0,
    }
}

fn structurally_corrupted(run: &StackRun) -> bool {
    let livelocked = run
        .report
        .outcomes
        .iter()
        .filter(|o| matches!(o, VcpuOutcome::Livelocked { .. }))
        .count() as u32;
    run.verdict.self_loops > 0
        || run.verdict.cycle
        || run.verdict.wild_pointer
        || run.verdict.lost > livelocked
}

/// Every correct scheme (strong *and* weak — the stack uses only LL/SC,
/// no plain stores to the synchronization variable) keeps the stack
/// exactly intact under 16-way simulated contention.
#[test]
fn correct_schemes_keep_the_stack_intact() {
    for kind in [
        SchemeKind::Hst,
        SchemeKind::HstWeak,
        SchemeKind::HstHtm,
        SchemeKind::Pst,
        SchemeKind::PstRemap,
        SchemeKind::PicoSt,
        SchemeKind::PicoHtm,
    ] {
        let run = run_stack_sim(kind, 16, config()).unwrap();
        assert!(
            !structurally_corrupted(&run),
            "{kind}: corrupted — {:?}",
            run.verdict
        );
        for outcome in &run.report.outcomes {
            assert!(
                matches!(
                    outcome,
                    VcpuOutcome::Exited(0) | VcpuOutcome::Livelocked { .. }
                ),
                "{kind}: {outcome:?}"
            );
        }
        // There was real contention: some SCs must have failed (or, for
        // PICO-HTM, whole regions must have aborted — its conflicts
        // surface as rollbacks, not failed SCs).
        assert!(
            run.report.stats.sc_failures > 0 || run.report.stats.htm_aborts > 0,
            "{kind}: suspiciously zero conflicts — no contention simulated?"
        );
    }
}

/// PICO-CAS — the scheme QEMU-4.1 ships — corrupts the stack, with the
/// paper's self-loop witness. Deterministic on the simulated multicore.
#[test]
fn pico_cas_corrupts_the_stack() {
    let run = run_stack_sim(SchemeKind::PicoCas, 16, config()).unwrap();
    assert!(
        structurally_corrupted(&run),
        "PICO-CAS survived — ABA not reproduced: {:?}",
        run.verdict
    );
    assert!(
        run.verdict.self_loops > 0 || run.verdict.cycle || run.verdict.lost > 0,
        "corrupted without a concrete witness? {:?}",
        run.verdict
    );
}

/// Simulated runs are exactly reproducible: same machine, same schedule,
/// same corruption.
#[test]
fn sim_runs_are_deterministic() {
    let a = run_stack_sim(SchemeKind::PicoCas, 16, config()).unwrap();
    let b = run_stack_sim(SchemeKind::PicoCas, 16, config()).unwrap();
    assert_eq!(a.verdict, b.verdict);
    assert_eq!(a.report.stats.sc_failures, b.report.stats.sc_failures);
    assert_eq!(a.report.stats.insns, b.report.stats.insns);
    assert_eq!(a.report.stats.sim_time, b.report.stats.sim_time);
}

/// Real OS threads (whatever parallelism the host has): every correct
/// scheme keeps the stack intact. (Corruption under PICO-CAS is *not*
/// asserted here — on a single-core host the preemption-granularity
/// interleaving may never expose the window.)
#[test]
fn threaded_smoke_correct_schemes_stay_intact() {
    for kind in [SchemeKind::Hst, SchemeKind::HstWeak, SchemeKind::PicoSt] {
        let run = run_stack(
            kind,
            8,
            StackConfig {
                nodes: 8,
                ops_per_thread: 3_000,
                stall: 0,
                victim_stall: 200,
            },
        )
        .unwrap();
        assert!(run.report.all_ok(), "{kind}: {:?}", run.report.outcomes);
        assert!(
            run.verdict.is_intact(run.nodes),
            "{kind}: corrupted — {:?}",
            run.verdict
        );
    }
}
