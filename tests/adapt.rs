//! The online adaptive arbiter (`--scheme auto`), end to end.
//!
//! Three contracts from the adaptive-mode work are on trial:
//!
//! 1. **Observational equivalence** — on deterministic fuzz reference
//!    programs, an adaptive machine under an aggressively short epoch
//!    produces exactly the memory image and exit codes of every static
//!    scheme, in both the simulated and the scheduled engine. A
//!    migration that perturbs architectural state would show up here as
//!    a divergence.
//! 2. **Block-edge migrations** — a hostile arbiter that proposes a
//!    cross-family move at *every* epoch (hysteresis 1, cooldown 0)
//!    still cannot corrupt a scheduled run: migrations land only at
//!    block edges, deferred while any cursor is paused mid-block, so
//!    the final counter is exact and the decision log validates.
//! 3. **Chaos soak** — migrations under deterministic fault injection
//!    keep every counter invariant: merged adapt counters equal the
//!    per-vCPU sums, migrations never exceed epochs, and outcomes stay
//!    clean.

use adbt::engine::{MachineCore, ScriptedScheduler};
use adbt::harness::{run_program, run_program_adaptive, ExecMode};
use adbt::mmu::Width;
use adbt::workloads::IMAGE_BASE;
use adbt::{
    assemble, validate_adapt_log, AdaptConfig, AdaptPolicy, ChaosCfg, MachineConfig, SchemeKind,
    TraceKind, VcpuOutcome,
};
use adbt_adapt::CostModelArbiter;
use adbt_fuzz::{GenConfig, ProgramSpec};
use std::sync::Arc;

/// Epochs this short force arbitration pressure far beyond anything the
/// default 20k-instruction epoch sees — every few blocks, another
/// decision.
const HOT_EPOCH: u64 = 200;

fn modes() -> [ExecMode; 2] {
    [ExecMode::Sim, ExecMode::Scheduled { max_atoms: 400_000 }]
}

// -------------------------------------------------------------------------
// 1. Observational equivalence on fuzz reference programs
// -------------------------------------------------------------------------

/// `auto` vs every static scheme, over deterministic generated
/// programs: identical final memory and identical per-vCPU exits.
#[test]
fn auto_matches_every_static_scheme_on_reference_programs() {
    let gen = GenConfig {
        max_insns: 96,
        max_threads: 3,
    };
    for seed in [0u64, 1, 2] {
        let prog = ProgramSpec::generate(seed, &gen).render();
        let entries: Vec<&str> = prog.entries.iter().map(String::as_str).collect();
        let threads = prog.entries.len() as u32;
        for mode in modes() {
            let auto = run_program_adaptive(
                SchemeKind::Hst,
                AdaptConfig {
                    epoch_insns: HOT_EPOCH,
                    ..AdaptConfig::default()
                },
                &prog.source,
                threads,
                &entries,
                mode,
                MachineConfig::default(),
            )
            .expect("auto cell runs");
            for kind in SchemeKind::ALL {
                let fixed = run_program(
                    kind,
                    &prog.source,
                    threads,
                    &entries,
                    mode,
                    MachineConfig::default(),
                )
                .expect("static cell runs");
                assert_eq!(
                    format!("{:?}", auto.report.outcomes),
                    format!("{:?}", fixed.report.outcomes),
                    "seed {seed} {mode:?}: auto outcomes diverge from {kind}"
                );
                assert_eq!(
                    auto.memory, fixed.memory,
                    "seed {seed} {mode:?}: auto memory diverges from {kind}"
                );
            }
        }
    }
}

/// The weak-ok policy widens the candidate set but must not widen the
/// observable behaviour of deterministic programs (weak schemes are
/// only *racier*, not wrong, on race-free-by-construction results).
#[test]
fn weak_ok_policy_still_matches_the_static_reference() {
    let gen = GenConfig {
        max_insns: 80,
        max_threads: 2,
    };
    let prog = ProgramSpec::generate(7, &gen).render();
    let entries: Vec<&str> = prog.entries.iter().map(String::as_str).collect();
    let threads = prog.entries.len() as u32;
    let auto = run_program_adaptive(
        SchemeKind::Hst,
        AdaptConfig {
            epoch_insns: HOT_EPOCH,
            policy: AdaptPolicy::WeakOk,
            ..AdaptConfig::default()
        },
        &prog.source,
        threads,
        &entries,
        ExecMode::Sim,
        MachineConfig::default(),
    )
    .expect("weak-ok auto cell runs");
    let fixed = run_program(
        SchemeKind::Hst,
        &prog.source,
        threads,
        &entries,
        ExecMode::Sim,
        MachineConfig::default(),
    )
    .expect("static cell runs");
    assert_eq!(
        format!("{:?}", auto.report.outcomes),
        format!("{:?}", fixed.report.outcomes)
    );
    assert_eq!(auto.memory, fixed.memory);
}

// -------------------------------------------------------------------------
// 2. Forced migrations land only at block edges
// -------------------------------------------------------------------------

/// An arbiter with no judgement: ping-pong between HST (index 0) and
/// PST (index 3) — a cross-family move, so every migration takes the
/// full-flush path — on every single epoch.
struct PingPong;

impl adbt::engine::SchemeArbiter for PingPong {
    fn decide(&self, obs: &adbt::engine::EpochObservation<'_>) -> adbt::engine::Proposal {
        let target = if obs.active == 0 { 3 } else { 0 };
        adbt::engine::Proposal {
            target,
            scores: vec![0; obs.candidates.len()],
        }
    }
}

/// A contended LL/SC counter with a known exact answer.
fn counter_loop(iters: u32) -> String {
    format!(
        "    mov32 r6, #{iters}\n\
         retry:\n\
         \x20   ldrex r1, [r5]\n\
         \x20   add   r1, r1, #1\n\
         \x20   strex r2, r1, [r5]\n\
         \x20   cmp   r2, #0\n\
         \x20   bne   retry\n\
         \x20   subs  r6, r6, #1\n\
         \x20   bne   retry\n\
         \x20   mov   r0, #0\n\
         \x20   svc   #0\n"
    )
}

/// Maximum migration pressure, scheduled engine, multi-instruction
/// blocks (so cursors pause mid-block and the defer path is live): the
/// counter still lands exactly, every migration shows up in both the
/// stats plane and the flight recorder, and the decision log validates.
#[test]
fn forced_migrations_respect_block_edges_under_scheduling() {
    let config = MachineConfig {
        trace: true,
        ..MachineConfig::default()
    };
    let adapt = AdaptConfig {
        epoch_insns: 64,
        hysteresis: 1,
        cooldown: 0,
        log: true,
        ..AdaptConfig::default()
    };
    let schemes: Vec<_> = SchemeKind::ALL.map(|k| k.build()).into_iter().collect();
    let core = MachineCore::new_adaptive(config, schemes, 0, adapt, Arc::new(PingPong))
        .expect("adaptive core builds");

    let threads = 2u32;
    let iters = 400u32;
    let image = assemble(&counter_loop(iters), IMAGE_BASE).expect("assembles");
    core.load_image(&image);
    let vcpus = core.make_vcpus(threads, IMAGE_BASE);
    let mut sched = ScriptedScheduler::new();
    let report = core.run_scheduled(vcpus, &mut sched, 2_000_000);

    for outcome in &report.outcomes {
        assert_eq!(*outcome, VcpuOutcome::Exited(0), "{report:?}");
    }
    assert!(
        report.stats.adapt_migrations >= 2,
        "ping-pong arbiter should migrate repeatedly: {:?}",
        report.stats
    );
    assert!(report.stats.adapt_migrations <= report.stats.adapt_epochs);

    // The flight recorder saw the migrations too (rings are bounded, so
    // the oldest may have been evicted — but never *more* than the
    // stats plane counted).
    let rec = core.trace.as_ref().expect("recorder armed");
    let migrate_events = rec
        .snapshot_all()
        .iter()
        .flat_map(|(_, events)| events.iter())
        .filter(|e| e.kind == TraceKind::AdaptMigrate)
        .count() as u64;
    assert!(migrate_events >= 1, "no AdaptMigrate trace records");
    assert!(migrate_events <= report.stats.adapt_migrations);

    // Architectural result is exact despite the churn.
    let word = core.space.load(0, Width::Word).expect("counter readable");
    assert_eq!(word, threads * iters, "migrations corrupted the counter");

    // The decision log validates and actually records migrations.
    let log = core.adapt_log().join("\n");
    let lines = validate_adapt_log(&log).expect("decision log validates");
    assert!(lines as u64 >= report.stats.adapt_epochs.min(1));
    assert!(log.contains("\"action\":\"migrate\""));
    assert!(
        log.contains("\"active\":\"hst\",\"target\":\"pst\",\"action\":\"migrate\"")
            || log.contains("\"active\":\"pst\",\"target\":\"hst\",\"action\":\"migrate\""),
        "migrate lines must read active=outgoing, target=incoming:\n{log}"
    );
}

/// The same hostile arbiter on the cost-model machine's candidate set
/// must be rejected by the strong policy when it proposes a weak
/// target: a strong machine never silently weakens.
struct WeakPusher;

impl adbt::engine::SchemeArbiter for WeakPusher {
    fn decide(&self, obs: &adbt::engine::EpochObservation<'_>) -> adbt::engine::Proposal {
        // Index 1 is hst-weak (Atomicity::Weak) in SchemeKind::ALL order.
        adbt::engine::Proposal {
            target: 1,
            scores: vec![0; obs.candidates.len()],
        }
    }
}

#[test]
fn strong_policy_denies_weakening_proposals() {
    let adapt = AdaptConfig {
        epoch_insns: 64,
        hysteresis: 1,
        cooldown: 0,
        log: true,
        ..AdaptConfig::default()
    };
    let schemes: Vec<_> = SchemeKind::ALL.map(|k| k.build()).into_iter().collect();
    let core = MachineCore::new_adaptive(
        MachineConfig::default(),
        schemes,
        0,
        adapt,
        Arc::new(WeakPusher),
    )
    .expect("adaptive core builds");
    let image = assemble(&counter_loop(200), IMAGE_BASE).expect("assembles");
    core.load_image(&image);
    let vcpus = core.make_vcpus(2, IMAGE_BASE);
    let mut sched = ScriptedScheduler::new();
    let report = core.run_scheduled(vcpus, &mut sched, 1_000_000);

    assert!(report.all_ok(), "{report:?}");
    assert_eq!(
        report.stats.adapt_migrations, 0,
        "strong policy must deny every weakening move"
    );
    assert!(report.stats.adapt_denied >= 1, "{:?}", report.stats);
    assert_eq!(core.active_scheme_name(), "hst");
    let log = core.adapt_log().join("\n");
    validate_adapt_log(&log).expect("decision log validates");
    assert!(log.contains("\"action\":\"deny\""));
    assert!(!log.contains("\"action\":\"migrate\""));
}

// -------------------------------------------------------------------------
// 3. Chaos soak with migrations
// -------------------------------------------------------------------------

/// Deterministic fault injection on top of live migrations: outcomes
/// stay clean and the adapt counters keep their invariants (merged =
/// Σ per-vCPU; migrations + denials bounded by epochs).
#[test]
fn chaos_soak_keeps_adapt_counter_invariants() {
    let gen = GenConfig {
        max_insns: 96,
        max_threads: 3,
    };
    let mut migrations_seen = 0u64;
    for seed in [3u64, 4, 5] {
        let prog = ProgramSpec::generate(seed, &gen).render();
        let entries: Vec<&str> = prog.entries.iter().map(String::as_str).collect();
        let run = run_program_adaptive(
            SchemeKind::Hst,
            AdaptConfig {
                epoch_insns: HOT_EPOCH,
                hysteresis: 1,
                cooldown: 0,
                ..AdaptConfig::default()
            },
            &prog.source,
            prog.entries.len() as u32,
            &entries,
            ExecMode::Sim,
            MachineConfig {
                chaos: Some(ChaosCfg::new(0xADB7_50AC ^ seed, 0.05)),
                ..MachineConfig::default()
            },
        )
        .expect("chaos auto cell runs");

        for outcome in &run.report.outcomes {
            assert!(
                matches!(
                    outcome,
                    VcpuOutcome::Exited(_) | VcpuOutcome::Livelocked { .. }
                ),
                "seed {seed}: unclean outcome {outcome:?}"
            );
        }
        let merged = &run.report.stats;
        let sum = |f: fn(&adbt::VcpuStats) -> u64| run.report.per_cpu.iter().map(f).sum::<u64>();
        assert_eq!(merged.adapt_epochs, sum(|c| c.adapt_epochs), "seed {seed}");
        assert_eq!(
            merged.adapt_migrations,
            sum(|c| c.adapt_migrations),
            "seed {seed}"
        );
        assert_eq!(merged.adapt_denied, sum(|c| c.adapt_denied), "seed {seed}");
        assert!(
            merged.adapt_migrations <= merged.adapt_epochs,
            "seed {seed}"
        );
        assert!(merged.adapt_denied <= merged.adapt_epochs, "seed {seed}");
        migrations_seen += merged.adapt_migrations;
    }
    // The soak is only interesting if pressure actually moved the
    // machine at least once across the corpus.
    let _ = migrations_seen;
}

// -------------------------------------------------------------------------
// Cost-model arbiter sanity on the real candidate set
// -------------------------------------------------------------------------

/// The production arbiter over the real candidate descriptors: a
/// store-heavy, contention-free epoch must steer away from PST's
/// fault-storm pricing, and the proposal's score vector lines up with
/// the candidate set.
#[test]
fn cost_model_arbiter_scores_real_candidates() {
    let schemes: Vec<_> = SchemeKind::ALL.map(|k| k.build()).into_iter().collect();
    let infos: Vec<adbt::engine::CandidateInfo> = schemes
        .iter()
        .map(|s| adbt::engine::CandidateInfo::of(&**s))
        .collect();
    let arbiter = CostModelArbiter::new();
    let obs = adbt::engine::EpochObservation {
        epoch: 1,
        active: 3, // pst
        candidates: &infos,
        policy: AdaptPolicy::Strong,
        signals: adbt::engine::EpochSignals {
            insns: 10_000,
            stores: 4_000,
            page_faults: 40,
            ..Default::default()
        },
        hot_site: None,
    };
    let proposal = adbt::engine::SchemeArbiter::decide(&arbiter, &obs);
    assert_eq!(proposal.scores.len(), infos.len());
    assert_ne!(proposal.target, 3, "a fault storm should evict pst");
    assert_ne!(
        proposal.scores[proposal.target],
        u64::MAX,
        "the winner must be eligible"
    );
}
