//! Chaos soak: the ABA stack workload under deterministic fault
//! injection.
//!
//! Three properties are on trial:
//!
//! 1. **Replay** — the chaos layer is seed-deterministic: two runs with
//!    the same seed, rate, scheme, and workload produce identical
//!    verdicts, fault sequences, and simulated makespans.
//! 2. **Linearizability under injection** — every correct scheme keeps
//!    the stack structurally intact while spurious SC failures, monitor
//!    clears, HTM commit aborts, and lock/mprotect stalls rain down at
//!    rate ≥ 0.05. Livelock is an acceptable *clean* outcome; hangs,
//!    panics, and silent corruption are not.
//! 3. **Graceful degradation** — threaded HTM runs with an abort budget
//!    fall back to the stop-the-world path and still complete.

use adbt::harness::{run_stack_with, StackRun};
use adbt::workloads::stack::StackConfig;
use adbt::{ChaosCfg, MachineConfig, SchemeKind, SimCosts, VcpuOutcome};

/// Seed pinned so failures reproduce byte-for-byte; rate at the floor
/// the robustness contract names (≥ 0.05).
const SEED: u64 = 0xADB7_C405;
const RATE: f64 = 0.05;

/// Small per-thread op counts keep the whole file fast in debug builds;
/// at rate 0.05 even 300 ops × 8 threads rolls the dice thousands of
/// times per scheme (every LL, SC, store helper, and lock acquisition).
fn stack_config(ops_per_thread: u32) -> StackConfig {
    StackConfig {
        nodes: 8,
        ops_per_thread,
        stall: 0,
        victim_stall: 0,
    }
}

fn chaos_config(seed: u64) -> MachineConfig {
    MachineConfig {
        chaos: Some(ChaosCfg::new(seed, RATE)),
        ..MachineConfig::default()
    }
}

/// Clean termination: every vCPU either exited 0 or was called out as
/// livelocked — nothing hung, nothing trapped, nothing panicked.
fn assert_clean_outcomes(kind: SchemeKind, run: &StackRun) {
    for outcome in &run.report.outcomes {
        assert!(
            matches!(
                outcome,
                VcpuOutcome::Exited(0) | VcpuOutcome::Livelocked { .. }
            ),
            "{kind}: unclean outcome {outcome:?}"
        );
    }
}

/// Counter invariants that hold on *every* run, chaos or not. These are
/// the monotonicity contracts the counter-bug sweep restored (an HTM
/// degradation used to decrement `sc`, making the first inequality
/// fail): failure counters never exceed their attempt counters, and the
/// merged totals are exactly the per-vCPU sums — a counter that ever
/// goes backwards or double-merges breaks one of the equalities.
fn assert_counter_invariants(kind: SchemeKind, run: &StackRun) {
    let s = &run.report.stats;
    assert!(
        s.sc_failures <= s.sc,
        "{kind}: sc_failures {} > sc {}",
        s.sc_failures,
        s.sc
    );
    assert!(
        s.htm_aborts <= s.htm_txns + s.txn_dispatches,
        "{kind}: htm_aborts {} > txns {} + txn_dispatches {}",
        s.htm_aborts,
        s.htm_txns,
        s.txn_dispatches
    );
    assert!(
        s.degradations <= s.exclusive_entries,
        "{kind}: every degradation takes the exclusive path ({} > {})",
        s.degradations,
        s.exclusive_entries
    );
    let sum =
        |field: fn(&adbt::VcpuStats) -> u64| -> u64 { run.report.per_cpu.iter().map(field).sum() };
    assert_eq!(s.sc, sum(|c| c.sc), "{kind}: merged sc ≠ per-vCPU sum");
    assert_eq!(
        s.sc_failures,
        sum(|c| c.sc_failures),
        "{kind}: merged sc_failures ≠ per-vCPU sum"
    );
    assert_eq!(
        s.injected_faults,
        sum(|c| c.injected_faults),
        "{kind}: merged injected_faults ≠ per-vCPU sum"
    );
    assert_eq!(
        s.degradations,
        sum(|c| c.degradations),
        "{kind}: merged degradations ≠ per-vCPU sum"
    );
    assert_eq!(
        s.lock_wait_ns,
        sum(|c| c.lock_wait_ns),
        "{kind}: merged lock_wait_ns ≠ per-vCPU sum"
    );
    // Tiering counters obey the same merge discipline and stay within
    // their envelopes: tiered blocks/insns are a subset of the totals,
    // and a deopt implies a superblock entry (hence a Boundary charge).
    assert!(
        s.tier_blocks <= s.blocks,
        "{kind}: tier_blocks {} > blocks {}",
        s.tier_blocks,
        s.blocks
    );
    assert!(
        s.tier_insns <= s.insns,
        "{kind}: tier_insns {} > insns {}",
        s.tier_insns,
        s.insns
    );
    assert!(
        s.deopts <= s.tier_blocks,
        "{kind}: deopts {} > tier_blocks {}",
        s.deopts,
        s.tier_blocks
    );
    for (name, field) in [
        (
            "promotions",
            (|c| c.promotions) as fn(&adbt::VcpuStats) -> u64,
        ),
        ("deopts", |c| c.deopts),
        ("tier_blocks", |c| c.tier_blocks),
        ("tier_insns", |c| c.tier_insns),
        ("opt_nzcv_killed", |c| c.opt_nzcv_killed),
        ("opt_const_folded", |c| c.opt_const_folded),
        ("opt_htable_coalesced", |c| c.opt_htable_coalesced),
        // Translation-cache lifecycle counters obey the same merge
        // discipline as everything else.
        ("invalidations", |c| c.invalidations),
        ("flushes", |c| c.flushes),
        ("retired_blocks", |c| c.retired_blocks),
        ("reclaimed_blocks", |c| c.reclaimed_blocks),
        ("smc_false_sharing", |c| c.smc_false_sharing),
    ] {
        let merged = field(s);
        assert_eq!(merged, sum(field), "{kind}: merged {name} ≠ per-vCPU sum");
    }
}

/// Structural corruption beyond what livelocked (mid-operation) vCPUs
/// legitimately account for — same witness as `tests/aba_stack.rs`.
fn structurally_corrupted(run: &StackRun) -> bool {
    let livelocked = run
        .report
        .outcomes
        .iter()
        .filter(|o| matches!(o, VcpuOutcome::Livelocked { .. }))
        .count() as u32;
    run.verdict.self_loops > 0
        || run.verdict.cycle
        || run.verdict.wild_pointer
        || run.verdict.lost > livelocked
}

/// Replay determinism (satellite 4): identical seed + workload ⇒
/// identical fault sequence, counters, verdict, and virtual makespan.
#[test]
fn identical_seed_replays_identically() {
    let run = || {
        run_stack_with(
            SchemeKind::HstHtm,
            4,
            stack_config(500),
            chaos_config(SEED),
            Some(SimCosts::default()),
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    assert!(
        a.report.stats.injected_faults > 0,
        "chaos at rate {RATE} injected nothing — the soak is vacuous"
    );
    assert_eq!(
        a.report.stats.injected_faults,
        b.report.stats.injected_faults
    );
    assert_eq!(a.report.stats.sc_failures, b.report.stats.sc_failures);
    assert_eq!(a.report.stats.degradations, b.report.stats.degradations);
    assert_eq!(a.report.stats.insns, b.report.stats.insns);
    assert_eq!(a.report.stats.sim_time, b.report.stats.sim_time);
    assert_eq!(
        a.report.chaos, b.report.chaos,
        "per-site fault counts diverged"
    );
    assert_eq!(a.verdict, b.verdict);
}

/// The full soak: all eight schemes on the simulated multicore under
/// rate-0.05 injection. Correct schemes must stay linearizable (or
/// livelock *cleanly*); PICO-CAS is exempt from the structural assert —
/// it corrupts by design, chaos or no chaos.
#[test]
fn all_schemes_survive_injection_or_fail_cleanly() {
    for kind in SchemeKind::ALL {
        let run = run_stack_with(
            kind,
            8,
            stack_config(300),
            chaos_config(SEED),
            Some(SimCosts::default()),
        )
        .unwrap();
        assert_clean_outcomes(kind, &run);
        assert_counter_invariants(kind, &run);
        assert!(
            run.report.stats.injected_faults > 0,
            "{kind}: no faults injected — soak is vacuous"
        );
        if kind != SchemeKind::PicoCas {
            assert!(
                !structurally_corrupted(&run),
                "{kind}: corrupted under injection — {:?}",
                run.verdict
            );
        }
    }
}

/// Threaded soak with the watchdog armed and an HTM degradation budget:
/// real OS threads, injected aborts, and the stop-the-world fallback.
/// Must terminate (the watchdog converts any hang into `Livelocked`)
/// and must not corrupt.
#[test]
fn threaded_soak_with_watchdog_terminates_cleanly() {
    for kind in [SchemeKind::Hst, SchemeKind::PicoHtm] {
        let config = MachineConfig {
            chaos: Some(ChaosCfg::new(SEED, RATE)),
            watchdog_ms: 5_000,
            htm_degrade_after: 4,
            // Aggressive tiering under injection: superblocks must deopt
            // and degrade like any other translated code.
            tier_threshold: 16,
            superblock_limit: 8,
            ..MachineConfig::default()
        };
        let run = run_stack_with(kind, 4, stack_config(1_000), config, None).unwrap();
        assert_clean_outcomes(kind, &run);
        assert_counter_invariants(kind, &run);
        assert!(
            !structurally_corrupted(&run),
            "{kind}: corrupted under threaded injection — {:?}",
            run.verdict
        );
    }
}

/// SC-storm regression: threaded HST under *heavy* injection with the
/// watchdog OFF must still terminate on its own. Stop-the-world SC
/// schemes can rotate forever here (every granted requester finds its
/// claim clobbered by a competitor's retry re-arm); the engine's
/// degradation ladder — backoff, then a held stop-the-world SC window —
/// is what guarantees progress, and this test is what notices if it
/// stops doing so.
#[test]
fn threaded_sc_storm_terminates_without_watchdog() {
    let config = MachineConfig {
        chaos: Some(ChaosCfg::new(SEED, 0.25)),
        // Storm-rate injection with tiering on: promoted code must not
        // interfere with the degradation ladder's progress guarantee.
        tier_threshold: 16,
        superblock_limit: 8,
        ..MachineConfig::default()
    };
    let run = run_stack_with(SchemeKind::Hst, 4, stack_config(150), config, None).unwrap();
    assert_clean_outcomes(SchemeKind::Hst, &run);
    assert_counter_invariants(SchemeKind::Hst, &run);
    assert!(
        !structurally_corrupted(&run),
        "hst: corrupted under storm-rate injection — {:?}",
        run.verdict
    );
}

/// Invalidation storm: the separately-rated `ChaosSite::Invalidate`
/// channel retires the executing vCPU's translations at dispatch
/// boundaries, so every scheme continuously retranslates while the base
/// chaos rate injects its usual SC failures, aborts, and stalls. The
/// run must terminate cleanly on all eight schemes (the armed watchdog
/// converts a lifecycle livelock into a failing outcome), must actually
/// invalidate, and must not corrupt the stack.
#[test]
fn invalidation_storm_soak_terminates_cleanly() {
    for kind in SchemeKind::ALL {
        let config = MachineConfig {
            chaos: Some(ChaosCfg::new(SEED, RATE).with_invalidate(0.05)),
            watchdog_ms: 10_000,
            // Tiering on: storm invalidations must also demote live
            // superblocks without stranding a vCPU.
            tier_threshold: 16,
            superblock_limit: 8,
            ..MachineConfig::default()
        };
        let run = run_stack_with(kind, 4, stack_config(300), config, None).unwrap();
        assert_clean_outcomes(kind, &run);
        assert_counter_invariants(kind, &run);
        assert!(
            run.report.stats.invalidations > 0,
            "{kind}: a 5% storm rate invalidated nothing — the soak is vacuous"
        );
        if kind != SchemeKind::PicoCas {
            assert!(
                !structurally_corrupted(&run),
                "{kind}: corrupted under invalidation storm — {:?}",
                run.verdict
            );
        }
    }
}

/// Chaos off is really off: the default config reports no chaos
/// snapshot and zero injected faults — the hot path ran injection-free.
#[test]
fn chaos_absent_by_default() {
    let run = run_stack_with(
        SchemeKind::Hst,
        4,
        stack_config(500),
        MachineConfig::default(),
        Some(SimCosts::default()),
    )
    .unwrap();
    assert!(run.report.chaos.is_none());
    assert_eq!(run.report.stats.injected_faults, 0);
    assert_eq!(run.report.stats.degradations, 0);
}
