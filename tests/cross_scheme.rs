//! Cross-crate integration: PARSEC-like kernels validate under every
//! scheme, profiling plumbing produces sane numbers, and the public
//! facade wires the substrate together correctly.

use adbt::harness::{run_parsec, run_parsec_with};
use adbt::workloads::parsec::Program;
use adbt::{MachineBuilder, MachineConfig, SchemeKind};

/// Every scheme runs every kernel correctly (small scale: this is a
/// correctness sweep, not a benchmark).
#[test]
fn all_schemes_run_all_kernels_correctly() {
    for kind in SchemeKind::ALL {
        for program in Program::ALL {
            let run = run_parsec(kind, program, 4, 0.02)
                .unwrap_or_else(|e| panic!("{kind} × {program}: {e}"));
            assert!(
                run.valid,
                "{kind} × {program}: invariants failed ({:?})",
                run.report.outcomes
            );
        }
    }
}

/// The Table I profile plumbing: stores dominate LL/SC by the modelled
/// ratios, and the profile is scheme-independent (it is a property of
/// the *guest*, not the emulation).
#[test]
fn instruction_profile_is_scheme_independent() {
    let a = run_parsec(SchemeKind::PicoCas, Program::Swaptions, 2, 0.05).unwrap();
    let b = run_parsec(SchemeKind::Hst, Program::Swaptions, 2, 0.05).unwrap();
    assert_eq!(a.report.stats.ll, b.report.stats.ll, "LL counts diverge");
    assert_eq!(a.report.stats.sc, b.report.stats.sc, "SC counts diverge");
    assert_eq!(
        a.report.stats.stores, b.report.stats.stores,
        "store counts diverge"
    );
    assert!(
        a.report.stats.stores > 20 * a.report.stats.ll,
        "swaptions must be store-dominated: {} stores vs {} ll",
        a.report.stats.stores,
        a.report.stats.ll
    );
}

/// Collision tracking measures the paper's "2.4% conflicts" quantity.
#[test]
fn collision_tracking_reports_rates() {
    let mut config = MachineConfig::default();
    config.track_collisions = true;
    // A small table forces collisions; the default 2^16 table keeps them
    // rare. Both must *work*; rates differ.
    config.htable_bits = 6;
    let crowded = run_parsec_with(SchemeKind::Hst, Program::Fluidanimate, 4, 0.05, config).unwrap();
    let (collisions, sets) = crowded.report.collisions;
    assert!(sets > 0, "tracking must count sets");
    assert!(collisions > 0, "a 64-entry table must collide");

    let mut config = MachineConfig::default();
    config.track_collisions = true;
    let roomy = run_parsec_with(SchemeKind::Hst, Program::Fluidanimate, 4, 0.05, config).unwrap();
    let (roomy_collisions, roomy_sets) = roomy.report.collisions;
    assert!(roomy_sets > 0);
    let crowded_rate = collisions as f64 / sets as f64;
    let roomy_rate = roomy_collisions as f64 / roomy_sets as f64;
    assert!(
        roomy_rate < crowded_rate,
        "bigger table must collide less: {roomy_rate} vs {crowded_rate}"
    );
}

/// The Fig. 12 breakdown accounts all CPU time across the four buckets
/// and reflects each scheme's character.
#[test]
fn breakdown_buckets_reflect_scheme_character() {
    let hst = run_parsec(SchemeKind::Hst, Program::Freqmine, 4, 0.05).unwrap();
    let pst = run_parsec(SchemeKind::Pst, Program::Freqmine, 4, 0.05).unwrap();
    let hst_breakdown = hst.report.breakdown();
    let pst_breakdown = pst.report.breakdown();
    // Totals account wall × threads.
    let hst_total = hst.seconds * 4.0;
    assert!((hst_breakdown.total_s() - hst_total).abs() < hst_total * 0.05);
    // PST pays mprotect; HST pays none.
    assert_eq!(hst.report.stats.mprotect_calls, 0);
    assert!(pst.report.stats.mprotect_calls > 0);
    assert!(pst_breakdown.mprotect_s > 0.0);
    assert_eq!(hst_breakdown.mprotect_s, 0.0);
}

/// Strong scaling: total work is fixed, so doubling the threads leaves
/// the total store count unchanged (each thread does half).
#[test]
fn kernels_divide_work_across_threads() {
    let two = run_parsec(SchemeKind::HstWeak, Program::X264, 2, 0.05).unwrap();
    let four = run_parsec(SchemeKind::HstWeak, Program::X264, 4, 0.05).unwrap();
    assert_eq!(two.report.stats.stores, four.report.stats.stores);
    assert!(two.valid && four.valid);
}

/// The machine facade exposes enough to write custom experiments.
#[test]
fn facade_round_trip() {
    let mut machine = MachineBuilder::new(SchemeKind::PstRemap)
        .memory(4 << 20)
        .build()
        .unwrap();
    machine
        .load_asm(
            "start: mov32 r5, cell\nldrex r1, [r5]\nadd r1, r1, #5\nstrex r2, r1, [r5]\nmov r0, r2\nsvc #0\n.align 4096\ncell: .word 37\n",
            0x2_0000,
        )
        .unwrap();
    let entry = machine.symbol("start").unwrap();
    let report = machine.run(1, entry);
    assert!(report.all_ok());
    assert_eq!(
        machine.read_word(machine.symbol("cell").unwrap()).unwrap(),
        42
    );
}
