//! Cross-crate integration: PARSEC-like kernels validate under every
//! scheme, profiling plumbing produces sane numbers, and the public
//! facade wires the substrate together correctly.

use adbt::harness::{run_parsec, run_parsec_with};
use adbt::workloads::parsec::Program;
use adbt::{MachineBuilder, MachineConfig, SchemeKind};

/// Every scheme runs every kernel correctly (small scale: this is a
/// correctness sweep, not a benchmark).
#[test]
fn all_schemes_run_all_kernels_correctly() {
    for kind in SchemeKind::ALL {
        for program in Program::ALL {
            let run = run_parsec(kind, program, 4, 0.02)
                .unwrap_or_else(|e| panic!("{kind} × {program}: {e}"));
            assert!(
                run.valid,
                "{kind} × {program}: invariants failed ({:?})",
                run.report.outcomes
            );
        }
    }
}

/// The Table I profile plumbing: stores dominate LL/SC by the modelled
/// ratios, and the profile is scheme-independent (it is a property of
/// the *guest*, not the emulation).
#[test]
fn instruction_profile_is_scheme_independent() {
    let a = run_parsec(SchemeKind::PicoCas, Program::Swaptions, 2, 0.05).unwrap();
    let b = run_parsec(SchemeKind::Hst, Program::Swaptions, 2, 0.05).unwrap();
    // Raw LL counts depend on real-thread timing two ways: a failed SC
    // re-runs the guest retry loop (one extra LL + SC), and a contended
    // acquire re-runs the LL *without reaching the SC at all* (the
    // "ldrex; cmp; bne wait" fast path). The timing-invariant quantity
    // is the number of *successful* pairs — one per acquisition, a
    // property of the guest alone — which is `sc - sc_failures`.
    let success = |s: &adbt::VcpuStats| s.sc - s.sc_failures;
    assert_eq!(
        success(&a.report.stats),
        success(&b.report.stats),
        "LL/SC profiles diverge"
    );
    for run in [&a, &b] {
        assert!(
            run.report.stats.ll >= success(&run.report.stats),
            "fewer LLs than successful SCs"
        );
    }
    assert_eq!(
        a.report.stats.stores, b.report.stats.stores,
        "store counts diverge"
    );
    assert!(
        a.report.stats.stores > 20 * a.report.stats.ll,
        "swaptions must be store-dominated: {} stores vs {} ll",
        a.report.stats.stores,
        a.report.stats.ll
    );
}

/// Collision tracking measures the paper's "2.4% conflicts" quantity.
#[test]
fn collision_tracking_reports_rates() {
    // A small table forces collisions; the default 2^16 table keeps them
    // rare. Both must *work*; rates differ.
    let config = MachineConfig {
        track_collisions: true,
        htable_bits: 6,
        ..Default::default()
    };
    let crowded = run_parsec_with(SchemeKind::Hst, Program::Fluidanimate, 4, 0.05, config).unwrap();
    let (collisions, sets) = crowded.report.collisions;
    assert!(sets > 0, "tracking must count sets");
    assert!(collisions > 0, "a 64-entry table must collide");

    let config = MachineConfig {
        track_collisions: true,
        ..Default::default()
    };
    let roomy = run_parsec_with(SchemeKind::Hst, Program::Fluidanimate, 4, 0.05, config).unwrap();
    let (roomy_collisions, roomy_sets) = roomy.report.collisions;
    assert!(roomy_sets > 0);
    let crowded_rate = collisions as f64 / sets as f64;
    let roomy_rate = roomy_collisions as f64 / roomy_sets as f64;
    assert!(
        roomy_rate < crowded_rate,
        "bigger table must collide less: {roomy_rate} vs {crowded_rate}"
    );
}

/// The Fig. 12 breakdown accounts all CPU time across the four buckets
/// and reflects each scheme's character.
#[test]
fn breakdown_buckets_reflect_scheme_character() {
    let hst = run_parsec(SchemeKind::Hst, Program::Freqmine, 4, 0.05).unwrap();
    let pst = run_parsec(SchemeKind::Pst, Program::Freqmine, 4, 0.05).unwrap();
    let hst_breakdown = hst.report.breakdown();
    let pst_breakdown = pst.report.breakdown();
    // Totals account wall × threads.
    let hst_total = hst.seconds * 4.0;
    assert!((hst_breakdown.total_s() - hst_total).abs() < hst_total * 0.05);
    // PST pays mprotect; HST pays none.
    assert_eq!(hst.report.stats.mprotect_calls, 0);
    assert!(pst.report.stats.mprotect_calls > 0);
    assert!(pst_breakdown.mprotect_s > 0.0);
    assert_eq!(hst_breakdown.mprotect_s, 0.0);
}

/// Strong scaling: total work is fixed, so doubling the threads leaves
/// the total store count unchanged (each thread does half).
#[test]
fn kernels_divide_work_across_threads() {
    let two = run_parsec(SchemeKind::HstWeak, Program::X264, 2, 0.05).unwrap();
    let four = run_parsec(SchemeKind::HstWeak, Program::X264, 4, 0.05).unwrap();
    assert_eq!(two.report.stats.stores, four.report.stats.stores);
    assert!(two.valid && four.valid);
}

/// Block chaining is a dispatch optimization: under every scheme, the
/// guest-visible result of a contended LL/SC counter is identical with
/// chaining off (`chain_limit 1`) and on (default), and the simulated
/// mode — which pins single-block dispatch internally — produces
/// bit-identical virtual timing either way.
#[test]
fn chaining_preserves_results_under_every_scheme() {
    const THREADS: u32 = 4;
    const ITERS: u32 = 300;
    let program = format!(
        "    mov32 r5, counter\n\
         \x20   mov32 r6, #{ITERS}\n\
         loop:\n\
         retry:\n\
         \x20   ldrex r1, [r5]\n\
         \x20   add   r1, r1, #1\n\
         \x20   strex r2, r1, [r5]\n\
         \x20   cmp   r2, #0\n\
         \x20   bne   retry\n\
         \x20   subs  r6, r6, #1\n\
         \x20   bne   loop\n\
         \x20   mov   r0, #0\n\
         \x20   svc   #0\n\
         \x20   .align 4096\n\
         counter:\n\
         \x20   .word 0\n"
    );
    for kind in SchemeKind::ALL {
        let run = |chain_limit: u32, sim: bool| {
            let mut machine = MachineBuilder::new(kind)
                .memory(4 << 20)
                .chain_limit(chain_limit)
                .build()
                .unwrap();
            machine.load_asm(&program, 0x1_0000).unwrap();
            let report = if sim {
                machine.run_sim(THREADS, 0x1_0000)
            } else {
                machine.run(THREADS, 0x1_0000)
            };
            assert!(
                report.all_ok(),
                "{kind} chain={chain_limit}: {:?}",
                report.outcomes
            );
            let counter = machine.symbol("counter").unwrap();
            (machine.read_word(counter).unwrap(), report)
        };
        let (unchained, _) = run(1, false);
        let (chained, chained_report) = run(64, false);
        assert_eq!(unchained, THREADS * ITERS, "{kind} unchained");
        assert_eq!(chained, THREADS * ITERS, "{kind} chained");
        assert!(
            chained_report.stats.chain_follows > 0,
            "{kind}: the loop's static branches must chain"
        );
        let (_, sim_unchained) = run(1, true);
        let (_, sim_chained) = run(64, true);
        assert_eq!(
            sim_unchained.stats.sim_time, sim_chained.stats.sim_time,
            "{kind}: chain_limit leaked into the simulated schedule"
        );
        assert_eq!(sim_unchained.stats.insns, sim_chained.stats.insns);
    }
}

/// The machine facade exposes enough to write custom experiments.
#[test]
fn facade_round_trip() {
    let mut machine = MachineBuilder::new(SchemeKind::PstRemap)
        .memory(4 << 20)
        .build()
        .unwrap();
    machine
        .load_asm(
            "start: mov32 r5, cell\nldrex r1, [r5]\nadd r1, r1, #5\nstrex r2, r1, [r5]\nmov r0, r2\nsvc #0\n.align 4096\ncell: .word 37\n",
            0x2_0000,
        )
        .unwrap();
    let entry = machine.symbol("start").unwrap();
    let report = machine.run(1, entry);
    assert!(report.all_ok());
    assert_eq!(
        machine.read_word(machine.symbol("cell").unwrap()).unwrap(),
        42
    );
}
