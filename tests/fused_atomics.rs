//! Tests for the §VI rule-based translation pass: canonical LL/SC retry
//! loops fuse into single host atomics, stay correct under contention,
//! and non-canonical loops fall back to the scheme untouched.

use adbt::{MachineBuilder, SchemeKind};

const COUNTER_LOOP: &str = r#"
    mov32 r5, counter
    mov32 r6, #2000
loop:
retry:
    ldrex r1, [r5]
    add   r1, r1, #1
    strex r2, r1, [r5]
    cmp   r2, #0
    bne   retry
    subs  r6, r6, #1
    bne   loop
    mov   r0, #0
    svc   #0
    .align 4096
counter:
    .word 0
"#;

fn run_counter(kind: SchemeKind, fuse: bool, threads: u32) -> (u32, adbt::RunReport) {
    let mut machine = MachineBuilder::new(kind)
        .memory(4 << 20)
        .fuse_atomics(fuse)
        .build()
        .unwrap();
    machine.load_asm(COUNTER_LOOP, 0x1_0000).unwrap();
    let report = machine.run(threads, 0x1_0000);
    let counter = machine.symbol("counter").unwrap();
    (machine.read_word(counter).unwrap(), report)
}

#[test]
fn fused_counter_is_exact_and_actually_fused() {
    for kind in [SchemeKind::Hst, SchemeKind::PicoCas, SchemeKind::Pst] {
        let (value, report) = run_counter(kind, true, 8);
        assert!(report.all_ok(), "{kind}: {:?}", report.outcomes);
        assert_eq!(value, 8 * 2000, "{kind}");
        assert!(
            report.stats.fused_rmws >= 8 * 2000,
            "{kind}: loops were not fused ({} fused)",
            report.stats.fused_rmws
        );
        // A fused loop never fails: the whole RMW is one host atomic.
        assert_eq!(report.stats.sc_failures, 0, "{kind}");
        // And the scheme's machinery went unused.
        assert_eq!(report.stats.exclusive_entries, 0, "{kind}");
        assert_eq!(report.stats.mprotect_calls, 0, "{kind}");
    }
}

#[test]
fn unfused_baseline_still_works() {
    let (value, report) = run_counter(SchemeKind::Hst, false, 4);
    assert!(report.all_ok());
    assert_eq!(value, 4 * 2000);
    assert_eq!(report.stats.fused_rmws, 0);
}

/// Register aliasing, flag-setting updates, interleaved instructions and
/// wrong branch targets must all make the pass decline.
#[test]
fn non_canonical_loops_are_not_fused() {
    let cases = [
        // Flag-setting ALU.
        "retry: ldrex r1, [r5]\nadds r1, r1, #1\nstrex r2, r1, [r5]\ncmp r2, #0\nbne retry\n",
        // Extra instruction inside the loop.
        "retry: ldrex r1, [r5]\nadd r1, r1, #1\nnop\nstrex r2, r1, [r5]\ncmp r2, #0\nbne retry\n",
        // Multiply is not a host atomic.
        "retry: ldrex r1, [r5]\nmul r1, r1, r4\nstrex r2, r1, [r5]\ncmp r2, #0\nbne retry\n",
        // Stored register differs from the computed one.
        "retry: ldrex r1, [r5]\nadd r3, r1, #1\nstrex r2, r1, [r5]\ncmp r2, #0\nbne retry\n",
        // Branch to somewhere other than the ldrex.
        "top: nop\nretry: ldrex r1, [r5]\nadd r1, r1, #1\nstrex r2, r1, [r5]\ncmp r2, #0\nbne top\n",
        // cmp against nonzero (with beq so the guest still terminates).
        "retry: ldrex r1, [r5]\nadd r1, r1, #1\nstrex r2, r1, [r5]\ncmp r2, #1\nbeq retry\n",
    ];
    for (i, body) in cases.iter().enumerate() {
        let source = format!(
            "mov32 r5, cell\nmov r4, #3\n{body}mov r0, #0\nsvc #0\n.align 4096\ncell: .word 5\n"
        );
        let mut machine = MachineBuilder::new(SchemeKind::Hst)
            .memory(2 << 20)
            .fuse_atomics(true)
            .build()
            .unwrap();
        machine.load_asm(&source, 0x1_0000).unwrap();
        let report = machine.run(1, 0x1_0000);
        assert!(report.all_ok(), "case {i}: {:?}", report.outcomes);
        assert_eq!(report.stats.fused_rmws, 0, "case {i} was wrongly fused");
    }
}

/// Every fusable operation (add/sub/and/orr/eor, immediate and register
/// operands) computes the same final state as the unfused scheme path.
#[test]
fn fused_ops_match_unfused_semantics() {
    let ops = [
        ("add", "#5"),
        ("sub", "#3"),
        ("and", "r7"),
        ("orr", "#0x70"),
        ("eor", "r7"),
    ];
    for (op, operand) in ops {
        let source = format!(
            r#"
                mov32 r5, cell
                mov   r7, #0x3c
            retry:
                ldrex r1, [r5]
                {op}  r3, r1, {operand}
                strex r2, r3, [r5]
                cmp   r2, #0
                bne   retry
                ; expose after-state: r0 = r1 ^ r3 ^ r2-shifted
                mov   r0, r3
                svc   #0
                .align 4096
            cell:
                .word 0x0f0f
            "#
        );
        let run = |fuse: bool| {
            let mut machine = MachineBuilder::new(SchemeKind::Hst)
                .memory(2 << 20)
                .fuse_atomics(fuse)
                .build()
                .unwrap();
            machine.load_asm(&source, 0x1_0000).unwrap();
            let report = machine.run(1, 0x1_0000);
            let cell = machine.read_word(machine.symbol("cell").unwrap()).unwrap();
            let code = match report.outcomes[0] {
                adbt::VcpuOutcome::Exited(code) => code,
                ref other => panic!("{op}: {other:?}"),
            };
            (cell, code, report.stats.fused_rmws)
        };
        let (cell_fused, code_fused, fused_count) = run(true);
        let (cell_plain, code_plain, plain_count) = run(false);
        assert_eq!(cell_fused, cell_plain, "{op}: memory state diverged");
        assert_eq!(code_fused, code_plain, "{op}: register state diverged");
        assert_eq!(fused_count, 1, "{op}: expected exactly one fusion");
        assert_eq!(plain_count, 0);
    }
}

/// The fused path keeps the profile commensurable: one fused RMW counts
/// as one LL and one SC.
#[test]
fn fused_profile_counts_llsc() {
    let (_, report) = run_counter(SchemeKind::Hst, true, 2);
    assert_eq!(report.stats.ll, report.stats.fused_rmws);
    assert_eq!(report.stats.sc, report.stats.fused_rmws);
}
