//! Frozen-seed regressions for the cross-scheme differential fuzzer.
//!
//! Two jobs:
//!
//! 1. **Frozen corpus** — seeds that exercise every generator feature
//!    (SMC patch loops, page-straddling stores, chaos-absorbing retry
//!    loops) run the full 8-scheme × 6-cell matrix and must stay
//!    divergence-free. A seed that ever finds an engine bug gets
//!    appended here after the fix, so the bug stays dead.
//! 2. **Replay fidelity** — the acceptance contract that a recorded
//!    artifact replays byte-identically: same seed ⇒ byte-identical
//!    program, schedule trace, Chrome trace, and memory image.

use adbt::harness::{run_program, ExecMode};
use adbt::{MachineConfig, SchemeKind};
use adbt_fuzz::{run_seed, FuzzOpts, GenConfig, ProgramSpec};

/// The frozen corpus. Seeds 0–11 are generator-coverage picks from the
/// initial development campaign (2 400 seeds, clean — see
/// EXPERIMENTS.md); the last is the CI corpus anchor.
const FROZEN: &[u64] = &[0, 3, 7, 11, 0x5EED_0001, adbt_fuzz::CI_CORPUS_START];

fn corpus_opts() -> FuzzOpts {
    FuzzOpts {
        gen: GenConfig {
            max_insns: 128,
            max_threads: 3,
        },
        ..FuzzOpts::default()
    }
}

#[test]
fn frozen_corpus_stays_clean() {
    let opts = corpus_opts();
    for &seed in FROZEN {
        let result = run_seed(seed, &opts);
        assert!(
            result.divergence.is_none(),
            "seed {seed:#x} regressed: {:?}",
            result.divergence.map(|d| (d.cell, d.minimized_detail)),
        );
        assert_eq!(result.cells, 48, "matrix shrank behind the corpus' back");
    }
}

/// Same seed ⇒ byte-identical generated program and predictions.
#[test]
fn generation_is_byte_identical_across_calls() {
    let cfg = GenConfig::default();
    for seed in [0u64, 42, 0xFFFF_FFFF_0000_0001] {
        let a = ProgramSpec::generate(seed, &cfg).render();
        let b = ProgramSpec::generate(seed, &cfg).render();
        assert_eq!(a, b, "seed {seed:#x} rendered differently twice");
    }
}

/// The artifact-replay contract: running the scheduled cell (the one
/// whose trace `adbt_run --replay` consumes) twice over the same
/// program yields byte-identical traces, Chrome JSON, memory, and
/// outcomes.
#[test]
fn scheduled_replay_artifacts_are_byte_identical() {
    let prog = ProgramSpec::generate(7, &GenConfig::default()).render();
    let entries: Vec<&str> = prog.entries.iter().map(String::as_str).collect();
    let config = MachineConfig {
        mem_size: 8 << 20,
        trace: true,
        ..MachineConfig::default()
    };
    let run = || {
        run_program(
            SchemeKind::Pst,
            &prog.source,
            entries.len() as u32,
            &entries,
            ExecMode::Scheduled {
                max_atoms: 4_000_000,
            },
            config.clone(),
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    let trace = a
        .trace
        .as_deref()
        .expect("scheduled run must record a trace");
    assert!(!trace.is_empty());
    assert_eq!(a.trace, b.trace, "schedule trace not replay-stable");
    assert_eq!(a.chrome_trace, b.chrome_trace, "Chrome trace not stable");
    assert_eq!(a.memory, b.memory);
    assert_eq!(
        format!("{:?}", a.report.outcomes),
        format!("{:?}", b.report.outcomes)
    );
}
