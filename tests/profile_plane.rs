//! The guest-PC contention profiler, end to end.
//!
//! Five contracts from the observability work are on trial:
//!
//! 1. **Off by default, and pure** — an untouched config allocates no
//!    recorder, and arming the profiler on a deterministic run changes
//!    nothing observable: byte-identical flight-recorder output,
//!    memory, outcomes, and stats. Charging draws nothing from the
//!    chaos PRNG and measures no wall time outside threaded runs.
//! 2. **Merged = Σ per-vCPU** — every profile counter obeys the same
//!    merge discipline `VcpuStats` does, overflow bucket included.
//! 3. **Chaos soak, all schemes** — profiling rides a fault-injection
//!    campaign on all eight schemes without perturbing it, and the
//!    cross-plane identities hold: profiled `sc_fail` equals the stats
//!    plane's `sc_failures`, profiled HTM-abort reasons sum to
//!    `htm_aborts`.
//! 4. **Crash-proof metrics** — the `--metrics` stream ends with its
//!    `"final":true` snapshot even when the watchdog halts a livelocked
//!    run; the stream validates against the `adbt-metrics-v1` schema.
//! 5. **Exact attribution** — a schedule that deschedules the
//!    `aba_llsc` victim between its LL and SC charges exactly one
//!    `sc_fail` to the victim's `strex` PC under HST, and none under
//!    value-comparing PICO-CAS (the ABA bug is invisible to it — which
//!    is the bug).

use adbt::engine::{SchedEvent, ScriptedScheduler};
use adbt::harness::{run_program, ExecMode, ProgramRun};
use adbt::profile::{Metric, ProfileSnapshot};
use adbt::workloads::interleave::Litmus;
use adbt::workloads::IMAGE_BASE;
use adbt::{
    assemble, ChaosCfg, Machine, MachineBuilder, MachineConfig, RunReport, SchemeKind, Vcpu,
    VcpuOutcome,
};
use adbt_isa::{decode, Insn, INSN_SIZE};

const SEED: u64 = 0xADB7_9806;

/// A contended LL/SC counter: every thread increments guest address 0
/// `iters` times through its monitor.
fn contended_loop(iters: u32) -> String {
    format!(
        "    mov32 r6, #{iters}\n\
         retry:\n\
         \x20   ldrex r1, [r5]\n\
         \x20   add   r1, r1, #1\n\
         \x20   strex r2, r1, [r5]\n\
         \x20   cmp   r2, #0\n\
         \x20   bne   retry\n\
         \x20   subs  r6, r6, #1\n\
         \x20   bne   retry\n\
         \x20   mov   r0, #0\n\
         \x20   svc   #0\n"
    )
}

/// Stats rendered with the wall-clock nanosecond counters masked out:
/// `exclusive_ns` and friends measure host time and differ between two
/// *identical* deterministic runs, so purity comparisons exclude them
/// (everything else — counts, virtual time — must match exactly).
fn deterministic_stats(stats: &adbt::VcpuStats) -> String {
    let mut json = stats.to_json();
    for key in ["\"exclusive_ns\":", "\"mprotect_ns\":", "\"lock_wait_ns\":"] {
        let start = json.find(key).expect(key) + key.len();
        let end = start
            + json[start..]
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(json.len() - start);
        json.replace_range(start..end, "0");
    }
    json
}

/// A metric's machine-wide total: attributed rows plus the overflow
/// bucket (totals stay exact even past the probe bound).
fn total(snapshot: &ProfileSnapshot, metric: Metric) -> u64 {
    snapshot.entries.iter().map(|e| e.get(metric)).sum::<u64>()
        + snapshot.overflow.counts[metric as usize]
}

// ---------------------------------------------------------------------------
// 1. Off by default, and pure
// ---------------------------------------------------------------------------

#[test]
fn profile_is_off_by_default_and_observation_is_pure() {
    // Untouched config: no recorder, one predicted branch per site.
    let machine = MachineBuilder::new(SchemeKind::Hst).build().unwrap();
    assert!(machine.core().profile.is_none(), "recorder armed unasked");

    // Purity: the same deterministic sim cell with tracing on, run with
    // profiling off and on, must be indistinguishable everywhere except
    // the profile itself.
    let source = contended_loop(200);
    let run = |profile: bool| -> ProgramRun {
        run_program(
            SchemeKind::Hst,
            &source,
            3,
            &[],
            ExecMode::Sim,
            MachineConfig {
                trace: true,
                profile,
                // Single-instruction blocks let the sim interleave
                // between LL and SC, so the run has real contention to
                // attribute.
                max_block_insns: 1,
                ..MachineConfig::default()
            },
        )
        .unwrap()
    };
    let plain = run(false);
    let profiled = run(true);
    assert!(plain.profile.is_none());
    let snap = profiled.profile.as_ref().expect("recorder armed");

    assert_eq!(
        format!("{:?}", plain.report.outcomes),
        format!("{:?}", profiled.report.outcomes),
    );
    assert_eq!(plain.memory, profiled.memory, "profiling changed memory");
    assert_eq!(
        plain.chrome_trace, profiled.chrome_trace,
        "profiling perturbed the flight recorder"
    );
    assert_eq!(
        deterministic_stats(&plain.report.stats),
        deterministic_stats(&profiled.report.stats),
        "profiling changed the stats plane"
    );

    // The profiled run saw real contention...
    assert!(total(snap, Metric::ScFail) > 0, "no contention profiled");
    // ...but deterministic modes charge no durations, so replay purity
    // can never depend on wall time.
    for metric in Metric::ALL.into_iter().filter(|m| m.is_duration()) {
        assert_eq!(total(snap, metric), 0, "{} in a sim run", metric.name());
    }
}

// ---------------------------------------------------------------------------
// 2. Merged = Σ per-vCPU
// ---------------------------------------------------------------------------

#[test]
fn merged_profile_equals_per_vcpu_sums_for_every_metric() {
    let threads = 4;
    let mut machine = MachineBuilder::new(SchemeKind::Hst)
        .memory(1 << 20)
        .profile(true)
        .build()
        .unwrap();
    machine.load_asm(&contended_loop(400), 0x1_0000).unwrap();
    let report = machine.run(threads, 0x1_0000);
    assert!(report.all_ok(), "{:?}", report.outcomes);

    let rec = machine.core().profile.as_ref().expect("recorder armed");
    let per_vcpu = rec.snapshot_all();
    assert_eq!(per_vcpu.len(), threads as usize, "one table per vCPU");
    let merged = rec.merged();
    assert!(
        merged.entries.iter().any(|e| e.total_events() > 0),
        "threaded contention run profiled nothing"
    );
    for metric in Metric::ALL {
        let sum: u64 = per_vcpu.iter().map(|(_, s)| total(s, metric)).sum();
        assert_eq!(
            total(&merged, metric),
            sum,
            "merged {} ≠ per-vCPU sum",
            metric.name()
        );
    }
    let drops: u64 = per_vcpu.iter().map(|(_, s)| s.overflow.drops).sum();
    assert_eq!(merged.overflow.drops, drops, "merged drops ≠ per-vCPU sum");

    // Cross-plane identity on a threaded run: every SC failure the
    // stats plane counted was charged to some PC (or the overflow
    // bucket) — the profiler drops totals never.
    assert_eq!(total(&merged, Metric::ScFail), report.stats.sc_failures);
}

// ---------------------------------------------------------------------------
// 3. Chaos soak across all eight schemes
// ---------------------------------------------------------------------------

#[test]
fn chaos_soak_with_profiling_neither_perturbs_nor_miscounts_any_scheme() {
    let source = contended_loop(150);
    for kind in SchemeKind::ALL {
        let run = |profile: bool| -> ProgramRun {
            run_program(
                kind,
                &source,
                3,
                &[],
                ExecMode::Sim,
                MachineConfig {
                    chaos: Some(ChaosCfg::new(SEED, 0.05)),
                    profile,
                    max_block_insns: 1,
                    ..MachineConfig::default()
                },
            )
            .unwrap()
        };
        let plain = run(false);
        let profiled = run(true);

        // Purity under injection: charging never consumes a chaos PRNG
        // draw, so the profiled cell replays the plain one exactly.
        assert_eq!(
            format!("{:?}", plain.report.outcomes),
            format!("{:?}", profiled.report.outcomes),
            "{kind}: profiling changed chaos outcomes"
        );
        assert_eq!(
            plain.memory, profiled.memory,
            "{kind}: profiling changed chaos memory"
        );
        assert_eq!(
            deterministic_stats(&plain.report.stats),
            deterministic_stats(&profiled.report.stats),
            "{kind}: profiling changed chaos stats"
        );

        // Cross-plane identities: the attribution plane and the counter
        // plane agree exactly, per scheme.
        let snap = profiled.profile.as_ref().expect("recorder armed");
        let s = &profiled.report.stats;
        assert_eq!(
            total(snap, Metric::ScFail),
            s.sc_failures,
            "{kind}: profiled sc_fail ≠ sc_failures"
        );
        let aborts = total(snap, Metric::HtmConflict)
            + total(snap, Metric::HtmCapacity)
            + total(snap, Metric::HtmOther);
        assert_eq!(aborts, s.htm_aborts, "{kind}: profiled aborts ≠ htm_aborts");
        // Injection at rate 0.05 over hundreds of SCs must leave marks
        // somewhere the profiler sees.
        assert!(
            s.sc_failures + s.htm_aborts > 0,
            "{kind}: chaos campaign injected nothing"
        );
    }
}

// ---------------------------------------------------------------------------
// 4. Metrics stream: the final snapshot survives a watchdog halt
// ---------------------------------------------------------------------------

/// Freeze the machine from outside until the watchdog declares it
/// livelocked: the metrics stream must still end with exactly one
/// `"final":true` snapshot carrying the merged stats block — a run that
/// dies ugly may not lose its last line.
#[test]
fn metrics_final_snapshot_survives_a_livelocked_watchdog_exit() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let mut machine = MachineBuilder::new(SchemeKind::Hst)
        .memory(1 << 20)
        .profile(true)
        .watchdog_ms(200)
        .build()
        .unwrap();
    // No exit: the loop runs until the watchdog halts the machine.
    machine
        .load_asm(
            "retry:\n\
             \x20   ldrex r1, [r5]\n\
             \x20   add   r1, r1, #1\n\
             \x20   strex r2, r1, [r5]\n\
             \x20   b     retry\n",
            0x1_0000,
        )
        .unwrap();
    let vcpus = machine.core().make_vcpus(2, 0x1_0000);

    let run_done = AtomicBool::new(false);
    let (report, lines) = std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            let out = adbt::observe::run_with_metrics(
                &machine,
                vcpus,
                std::time::Duration::from_millis(20),
            );
            run_done.store(true, Ordering::SeqCst);
            out
        });
        // Let the vCPUs retire some work (and the sampler emit some
        // periodic lines) first.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let barrier = &machine.core().exclusive;
        barrier.register();
        // Hold exclusivity until the watchdog fires and halts the run
        // (polling `run_done` too — `run_threaded` resets the halt flag
        // on its way out).
        if barrier.start_exclusive().is_ok() {
            while !barrier.halted() && !run_done.load(Ordering::SeqCst) {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            barrier.end_exclusive();
        }
        barrier.unregister();
        handle.join().expect("run thread panicked")
    });

    for outcome in &report.outcomes {
        assert!(
            matches!(outcome, VcpuOutcome::Livelocked { .. }),
            "expected Livelocked after the halt, got {outcome:?}"
        );
    }
    let last = lines.last().expect("metrics stream is never empty");
    assert!(
        last.contains("\"final\":true"),
        "last line is not the final snapshot: {last}"
    );
    assert!(
        last.contains("\"stats\":"),
        "final line lacks the merged stats block: {last}"
    );
    // And the whole stream passes the schema validator — including the
    // exactly-one-final-line rule.
    let stream = lines.join("\n") + "\n";
    adbt::profile::metrics::validate_metrics_jsonl(&stream).expect("metrics stream validates");
}

// ---------------------------------------------------------------------------
// 5. Exact attribution on the aba_llsc litmus
// ---------------------------------------------------------------------------

/// Decodes the victim's instruction stream and returns the guest PCs of
/// its `ldrex` and `strex` (the litmus puts the attacker after the
/// victim, so scanning stops at the first match).
fn victim_ll_sc_pcs(source: &str) -> (u32, u32) {
    let img = assemble(source, IMAGE_BASE).unwrap();
    let victim = img.symbol("victim").expect("victim entry");
    let (mut ll, mut sc) = (None, None);
    let mut pc = victim;
    while ll.is_none() || sc.is_none() {
        let off = (pc - IMAGE_BASE) as usize;
        let word = u32::from_le_bytes(img.bytes[off..off + 4].try_into().unwrap());
        match decode(word).unwrap() {
            Insn::Ldrex { .. } if ll.is_none() => ll = Some(pc),
            Insn::Strex { .. } if sc.is_none() => sc = Some(pc),
            _ => {}
        }
        pc += INSN_SIZE;
    }
    (ll.unwrap(), sc.unwrap())
}

/// Runs the `aba_llsc` litmus in scheduled mode (one instruction per
/// atom) under `schedule`, returning the machine (for its profile) and
/// the report and scheduler (for its event stream).
fn scheduled_aba(
    kind: SchemeKind,
    source: &str,
    schedule: &[(usize, u64)],
) -> (Machine, RunReport, ScriptedScheduler) {
    let mut machine = MachineBuilder::new(kind)
        .memory(4 << 20)
        .max_block_insns(1)
        .profile(true)
        .build()
        .unwrap();
    machine.load_asm(source, IMAGE_BASE).unwrap();
    let victim = machine.symbol("victim").unwrap();
    let attacker = machine.symbol("attacker").unwrap();
    let vcpus = vec![Vcpu::new(1, victim), Vcpu::new(2, attacker)];
    let mut sched = ScriptedScheduler::from_segments(schedule);
    let report = machine.run_scheduled(vcpus, &mut sched, 100_000);
    (machine, report, sched)
}

#[test]
fn scheduled_aba_llsc_charges_exactly_one_sc_fail_at_the_victims_strex() {
    let source = Litmus::AbaLlsc.program().source;
    let (_ll_pc, strex_pc) = victim_ll_sc_pcs(&source);

    // Probe: run the victim alone to learn the atom index of its LL —
    // robust against pseudo-instruction expansion and scheme pause
    // points, because it observes the scheduler's own event stream.
    let (_, probe_report, probe) = scheduled_aba(SchemeKind::Hst, &source, &[(0, u64::MAX)]);
    assert!(probe_report.all_ok());
    let ll_atom = probe
        .events
        .iter()
        .find_map(|&(atom, e)| match e {
            SchedEvent::Ll { tid: 1, .. } => Some(atom),
            _ => None,
        })
        .expect("victim issued an LL");

    // The attack: deschedule the victim right after its LL, let the
    // attacker drive x through the full 100 → 200 → 100 cycle, then
    // resume the victim for its single SC attempt.
    let schedule = [(0, ll_atom + 1), (1, u64::MAX)];

    // HST fails the SC — and the profiler must pin that failure to the
    // victim's strex, exactly once, with no streak (the victim never
    // retries).
    let (machine, report, _) = scheduled_aba(SchemeKind::Hst, &source, &schedule);
    assert_eq!(
        format!("{:?}", report.outcomes),
        format!("{:?}", [VcpuOutcome::Exited(1), VcpuOutcome::Exited(0)]),
        "victim's SC should fail, attacker should finish"
    );
    assert_eq!(report.stats.sc_failures, 1);
    let merged = machine.core().profile.as_ref().unwrap().merged();
    assert_eq!(total(&merged, Metric::ScFail), 1);
    assert_eq!(total(&merged, Metric::ScStreak), 0, "no SC ever retried");
    let charged: Vec<_> = merged
        .entries
        .iter()
        .filter(|e| e.get(Metric::ScFail) > 0)
        .collect();
    assert_eq!(charged.len(), 1, "one failing site: {merged:?}");
    assert_eq!(
        charged[0].pc, strex_pc,
        "sc_fail charged to {:#x}, strex is at {strex_pc:#x}",
        charged[0].pc
    );
    assert_eq!(charged[0].tier, adbt::profile::Tier::Block);

    // PICO-CAS under the identical schedule: the value is back to 100,
    // so its SC *succeeds* — zero sc_fail anywhere. The profile showing
    // nothing at the strex is the paper's ABA bug, made visible by its
    // absence.
    let (machine, report, _) = scheduled_aba(SchemeKind::PicoCas, &source, &schedule);
    assert_eq!(
        format!("{:?}", report.outcomes),
        format!("{:?}", [VcpuOutcome::Exited(0), VcpuOutcome::Exited(0)]),
        "PICO-CAS's SC should succeed incorrectly (the ABA bug)"
    );
    let merged = machine.core().profile.as_ref().unwrap().merged();
    assert_eq!(total(&merged, Metric::ScFail), 0);
}
