//! The translation-cache lifecycle, end to end: SMC invalidation,
//! epoch-based reclamation, and bounded-memory operation.
//!
//! Four contracts are on trial:
//!
//! 1. **SMC is honored everywhere** — a guest store into its own (or
//!    another vCPU's) translated code invalidates the stale translation
//!    on every scheme, with tiering off and on, and the retranslated
//!    code's semantics are observed deterministically.
//! 2. **Tiering is still an optimization** — a patch landing inside a
//!    promoted superblock demotes it; the guest-visible result matches
//!    the block-granular run exactly.
//! 3. **Bounded memory** — under a `cache_limit` budget a
//!    translation-churn workload never exceeds the budget (asserted from
//!    the occupancy counters), keeps making progress (no `Livelocked`),
//!    and actually reclaims: retire → grace → free.
//! 4. **Scheduled-mode observability** — the checker substrate surfaces
//!    invalidations as `SchedEvent::Invalidate`, at the atom the patch
//!    landed, so schedules around SMC are explorable and replayable.

use adbt::engine::{MachineCore, SchedEvent, ScriptedScheduler};
use adbt::workloads::interleave::Litmus;
use adbt::workloads::IMAGE_BASE;
use adbt::{Machine, MachineBuilder, SchemeKind, Vcpu, VcpuOutcome};

/// Builds a machine for a litmus-style two-entry program.
fn build(kind: SchemeKind, tier_threshold: u32, source: &str) -> Machine {
    let mut builder = MachineBuilder::new(kind).memory(1 << 20);
    if tier_threshold > 0 {
        builder = builder.tier_threshold(tier_threshold).superblock_limit(8);
    }
    let mut machine = builder.build().unwrap();
    machine.load_asm(source, IMAGE_BASE).unwrap();
    machine
}

/// vCPUs for a [`Litmus`]-shaped program: one per entry symbol.
fn litmus_vcpus(machine: &Machine, entries: &[&str]) -> Vec<Vcpu> {
    entries
        .iter()
        .enumerate()
        .map(|(i, sym)| Vcpu::new(i as u32 + 1, machine.symbol(sym).unwrap()))
        .collect()
}

fn exit_code(outcome: &VcpuOutcome) -> i32 {
    match outcome {
        VcpuOutcome::Exited(code) => *code,
        other => panic!("expected a clean exit, got {other:?}"),
    }
}

/// Store-to-own-code on all eight schemes, tiering off and on: the
/// patched instruction must be observed on the very next loop pass
/// (exit 8), and the store must be accounted as an invalidation.
#[test]
fn smc_self_patch_lands_on_all_schemes_with_and_without_tiering() {
    let program = Litmus::SmcSelf.program();
    for kind in SchemeKind::ALL {
        for threshold in [0, 2] {
            let machine = build(kind, threshold, &program.source);
            let vcpus = litmus_vcpus(&machine, &["patcher", "bystander"]);
            let report = machine.run_vcpus(vcpus);
            assert_eq!(
                exit_code(&report.outcomes[0]),
                8,
                "{kind} tier={threshold}: stale translation survived the self-patch"
            );
            assert_eq!(exit_code(&report.outcomes[1]), 0, "{kind} tier={threshold}");
            assert!(
                report.stats.invalidations >= 1,
                "{kind} tier={threshold}: the SMC store was not accounted as an invalidation"
            );
            let occ = machine.core().cache_occupancy();
            assert!(
                occ.retired_blocks >= 1,
                "{kind} tier={threshold}: invalidation retired nothing"
            );
        }
    }
}

/// Cross-vCPU code patch on all eight schemes, real threads: the
/// victim's bounded loop terminates whether the patch lands early, late,
/// or never, and its exit counts the post-patch iterations (0..=6).
#[test]
fn smc_cross_patch_terminates_on_all_schemes() {
    let program = Litmus::SmcCross.program();
    for kind in SchemeKind::ALL {
        for threshold in [0, 2] {
            let machine = build(kind, threshold, &program.source);
            let vcpus = litmus_vcpus(&machine, &["victim", "patcher"]);
            let report = machine.run_vcpus(vcpus);
            let victim = exit_code(&report.outcomes[0]);
            assert!(
                victim <= 6,
                "{kind} tier={threshold}: impossible exit {victim}"
            );
            assert_eq!(exit_code(&report.outcomes[1]), 0, "{kind} tier={threshold}");
        }
    }
}

/// A patch inside a *promoted* hot loop: 120 iterations of the two-block
/// shape tiering stitches, with the latch patched (`+1` → `+3`) when 60
/// iterations remain. Block-granular arithmetic: 60 pre-patch passes add
/// 1, the patching pass still runs its already-translated stale latch
/// (+1), and the 59 remaining passes run the retranslated latch (+3
/// each) — exit 60 + 1 + 177 = 238. The tiered run must promote, get
/// demoted by the invalidation, and land on the *same* exit code.
const HOT_PATCH: &str = r#"
    hot:
        mov   r0, #0
        mov   r3, #120
        mov32 r5, hpatch
        mov32 r6, hdonor
    hloop:
        add   r1, r1, #1
        cmp   r3, #60
        bne   hskip
        ldr   r2, [r6]
        str   r2, [r5]          ; SMC: patch the latch mid-loop
    hskip:
    hpatch:
        add   r0, r0, #1        ; patched to: add r0, r0, #3
        subs  r3, r3, #1
        bne   hloop
        svc   #0

    hdonor:
        add   r0, r0, #3
"#;

#[test]
fn smc_inside_superblock_demotes_and_matches_untiered() {
    for kind in SchemeKind::ALL {
        let run = |threshold: u32| {
            let machine = build(kind, threshold, HOT_PATCH);
            let vcpus = vec![Vcpu::new(1, machine.symbol("hot").unwrap())];
            let report = machine.run_vcpus(vcpus);
            (exit_code(&report.outcomes[0]), report.stats)
        };
        let (untiered, _) = run(0);
        assert_eq!(untiered, 238, "{kind}: block-granular SMC arithmetic broke");
        let (tiered, stats) = run(2);
        assert_eq!(
            tiered, untiered,
            "{kind}: tiering changed the guest-visible SMC semantics"
        );
        assert!(
            stats.promotions >= 1,
            "{kind}: the hot loop never promoted — the demotion path went untested"
        );
        assert!(
            stats.invalidations >= 1,
            "{kind}: the mid-loop patch was not accounted as an invalidation"
        );
    }
}

/// A translation-churn program: `blocks` two-instruction blocks run
/// end to end `passes` times. With more blocks than one arena segment
/// holds, a segment-sized `cache_limit` forces flush → retire → grace →
/// reclaim on every pass.
fn churn_program(blocks: u32, passes: u32) -> String {
    let mut s = format!("    mov   r4, #{passes}\nouter:\n");
    for i in 0..blocks {
        s.push_str(&format!(
            "c{i}:\n    add   r0, r0, #1\n    b     c{}\n",
            i + 1
        ));
    }
    s.push_str(&format!(
        "c{blocks}:\n    subs  r4, r4, #1\n    bne   outer\n    mov   r0, #0\n    svc   #0\n"
    ));
    s
}

/// Bounded-memory churn: two vCPUs race through 1500 distinct blocks —
/// more than a segment-sized budget can hold — three times over. The
/// occupancy counters must show the budget was never exceeded (hard
/// bound, live + limbo), that generational flushes and epoch
/// reclamation actually ran, and every vCPU must finish cleanly (the
/// armed watchdog converts a livelock into a failing outcome).
#[test]
fn cache_limit_is_a_hard_bound_under_churn() {
    let limit = MachineCore::MIN_CACHE_LIMIT;
    let mut machine = MachineBuilder::new(SchemeKind::Hst)
        .memory(1 << 20)
        .cache_limit(limit)
        .tier_threshold(2)
        .superblock_limit(8)
        .watchdog_ms(30_000)
        .build()
        .unwrap();
    machine
        .load_asm(&churn_program(1500, 3), IMAGE_BASE)
        .unwrap();
    let report = machine.run(2, IMAGE_BASE);
    for outcome in &report.outcomes {
        assert_eq!(
            exit_code(outcome),
            0,
            "churn under cache_limit must keep making progress"
        );
    }
    let occ = machine.core().cache_occupancy();
    assert!(
        occ.peak_bytes <= limit,
        "cache budget exceeded: peak {} > limit {limit}",
        occ.peak_bytes
    );
    assert!(occ.arena_bytes <= limit);
    assert!(occ.flushes >= 1, "no generational flush under pressure");
    assert!(occ.retired_blocks >= 1);
    assert!(
        occ.reclaimed_blocks >= 1,
        "epoch reclamation never freed a retired block"
    );
    assert!(
        occ.reclaimed_segments >= 1,
        "no arena segment was ever returned"
    );
    // The merge discipline extends to the lifecycle counters.
    let s = &report.stats;
    let sum =
        |field: fn(&adbt::VcpuStats) -> u64| -> u64 { report.per_cpu.iter().map(field).sum() };
    assert_eq!(s.flushes, sum(|c| c.flushes));
    assert_eq!(s.retired_blocks, sum(|c| c.retired_blocks));
    assert_eq!(s.reclaimed_blocks, sum(|c| c.reclaimed_blocks));
}

/// An unlimited cache never flushes and never frees a segment — the
/// lifecycle machinery stays entirely out of the way by default.
#[test]
fn no_limit_means_no_lifecycle_activity() {
    let mut machine = MachineBuilder::new(SchemeKind::Hst)
        .memory(1 << 20)
        .build()
        .unwrap();
    machine
        .load_asm(&churn_program(200, 2), IMAGE_BASE)
        .unwrap();
    let report = machine.run(1, IMAGE_BASE);
    assert_eq!(exit_code(&report.outcomes[0]), 0);
    let occ = machine.core().cache_occupancy();
    assert_eq!(occ.flushes, 0);
    assert_eq!(occ.invalidations, 0);
    assert_eq!(occ.reclaimed_segments, 0);
    assert_eq!(
        occ.live_blocks as u32,
        machine.core().cached_blocks() as u32
    );
}

/// Scheduled mode, victim-first: the victim translates its loop before
/// the patcher's store, so the store must fault, retire the victim's
/// blocks, and surface as a `SchedEvent::Invalidate` at the patch atom.
/// The schedule is scripted, so the exit code is exact: two stale
/// iterations before the patch, four patched after it.
#[test]
fn scheduled_smc_cross_surfaces_the_invalidate_event() {
    let program = Litmus::SmcCross.program();
    let mut machine = MachineBuilder::new(SchemeKind::Hst)
        .memory(1 << 20)
        .max_block_insns(1)
        .build()
        .unwrap();
    machine.load_asm(&program.source, IMAGE_BASE).unwrap();
    let vpatch = machine.symbol("vpatch").unwrap();
    let vcpus = litmus_vcpus(&machine, &["victim", "patcher"]);
    // 8 atoms of victim: `mov r0`, `mov r3`, then two full iterations of
    // the stale `+0` loop; then the patcher runs to completion.
    let mut sched = ScriptedScheduler::parse("0x8,1").unwrap();
    let report = machine.run_scheduled(vcpus, &mut sched, 20_000);
    assert_eq!(
        exit_code(&report.outcomes[0]),
        4,
        "two stale (+0) iterations, then four patched (+1) ones"
    );
    assert_eq!(exit_code(&report.outcomes[1]), 0);
    let invalidate = sched
        .events
        .iter()
        .find(|(_, e)| matches!(e, SchedEvent::Invalidate { .. }));
    let Some(&(_, SchedEvent::Invalidate { tid, addr })) = invalidate else {
        panic!("the patcher's store over translated code emitted no Invalidate event");
    };
    assert_eq!(tid, 2, "the patcher (tid 2) triggers the invalidation");
    assert_eq!(addr, vpatch, "the event carries the patched address");
}

/// Scheduled mode, patcher-first: the patch lands before the victim
/// translates anything, so every victim iteration runs patched code
/// (exit 6) and no translation needs invalidating — the store settles as
/// code/data false sharing on the shared code page at most.
#[test]
fn scheduled_patcher_first_patches_before_translation() {
    let program = Litmus::SmcCross.program();
    let mut machine = MachineBuilder::new(SchemeKind::Hst)
        .memory(1 << 20)
        .max_block_insns(1)
        .build()
        .unwrap();
    machine.load_asm(&program.source, IMAGE_BASE).unwrap();
    let vcpus = litmus_vcpus(&machine, &["victim", "patcher"]);
    let mut sched = ScriptedScheduler::parse("1x16,0").unwrap();
    let report = machine.run_scheduled(vcpus, &mut sched, 20_000);
    assert_eq!(
        exit_code(&report.outcomes[0]),
        6,
        "a patch landing before translation must be observed by every iteration"
    );
    assert_eq!(exit_code(&report.outcomes[1]), 0);
}
