//! Tiered translation is an *optimization*: under every scheme, a
//! program's guest-visible result — final memory, exit codes, and the
//! deterministic instruction profile — is identical with tiering off and
//! on. These tests also pin the gating rules (single-instruction
//! machines never tier; bad limits are rejected at build time) and soak
//! the deopt path under chaos injection.

use adbt::harness::{run_parsec_with, run_stack_with, StackRun};
use adbt::workloads::parsec::Program;
use adbt::workloads::stack::StackConfig;
use adbt::{ChaosCfg, Machine, MachineBuilder, MachineConfig, SchemeKind, VcpuOutcome};

const THREADS: u32 = 4;
const ITERS: u32 = 300;

/// The contended LL/SC counter loop every scheme must emulate correctly;
/// hot enough (ITERS iterations per thread) to cross small promotion
/// thresholds many times over.
fn counter_program(iters: u32) -> String {
    format!(
        "    mov32 r5, counter\n\
         \x20   mov32 r6, #{iters}\n\
         loop:\n\
         retry:\n\
         \x20   ldrex r1, [r5]\n\
         \x20   add   r1, r1, #1\n\
         \x20   strex r2, r1, [r5]\n\
         \x20   cmp   r2, #0\n\
         \x20   bne   retry\n\
         \x20   subs  r6, r6, #1\n\
         \x20   bne   loop\n\
         \x20   mov   r0, #0\n\
         \x20   svc   #0\n\
         \x20   .align 4096\n\
         counter:\n\
         \x20   .word 0\n"
    )
}

fn build(kind: SchemeKind, tier_threshold: u32, source: &str) -> Machine {
    let mut machine = MachineBuilder::new(kind)
        .memory(4 << 20)
        .tier_threshold(tier_threshold)
        .superblock_limit(8)
        .build()
        .unwrap();
    machine.load_asm(source, 0x1_0000).unwrap();
    machine
}

/// Differential equivalence on the contended counter, all eight schemes:
/// same final memory tiered and untiered, and — single-threaded, where
/// every counter is deterministic — an identical instruction profile.
#[test]
fn tiered_matches_untiered_on_all_schemes() {
    let program = counter_program(ITERS);
    for kind in SchemeKind::ALL {
        // Contended: final memory must match exactly.
        for threshold in [0, 16] {
            let machine = build(kind, threshold, &program);
            let report = machine.run(THREADS, 0x1_0000);
            assert!(
                report.all_ok(),
                "{kind} tier={threshold}: {:?}",
                report.outcomes
            );
            let counter = machine.symbol("counter").unwrap();
            assert_eq!(
                machine.read_word(counter).unwrap(),
                THREADS * ITERS,
                "{kind} tier={threshold}: lost increments"
            );
        }

        // Single-threaded: the whole profile is deterministic, so the
        // tiers must charge identical counters. (txn_dispatches is
        // intentionally excluded everywhere: open-transaction dispatches
        // stay block-granular by design, so their count is a tier
        // artifact, not a guest property.) Threshold 2 because heat
        // counts *lookup* dispatches — chain-budget restarts, roughly one
        // per 64 hops — so a short single-threaded run needs a low bar
        // for promotion to actually occur.
        let profile = |threshold: u32| {
            let machine = build(kind, threshold, &program);
            let report = machine.run(1, 0x1_0000);
            assert!(
                report.all_ok(),
                "{kind} tier={threshold}: {:?}",
                report.outcomes
            );
            let s = report.stats;
            (
                s.insns,
                s.blocks,
                s.loads,
                s.stores,
                s.ll,
                s.sc,
                s.sc_failures,
            )
        };
        assert_eq!(
            profile(0),
            profile(2),
            "{kind}: tiering changed the deterministic instruction profile"
        );
    }
}

/// Promotion actually happens on hot loops, and the tier counters are
/// consistent: tiered blocks/insns are a subset of the totals, and every
/// promotion published exactly one live superblock.
#[test]
fn hot_loops_promote_and_tier_counters_are_consistent() {
    // The loop is written to give every pass something to eliminate:
    // `movs` flags are dead (the later `subs` overwrites them unread),
    // `mov`+`add` on constants folds, and under HST the `ldrex` after a
    // plain store to the same address re-marks an already-marked hash
    // entry (LL-origin — coalescable).
    let program = "    mov32 r5, counter\n\
                   \x20   mov32 r6, #2000\n\
                   loop:\n\
                   \x20   mov   r2, #5\n\
                   \x20   add   r2, r2, #3\n\
                   \x20   ldr   r3, [r5]\n\
                   \x20   add   r3, r3, #1\n\
                   \x20   str   r3, [r5]\n\
                   \x20   ldrex r4, [r5]\n\
                   \x20   strex r7, r4, [r5]\n\
                   \x20   movs  r1, r6\n\
                   \x20   subs  r6, r6, #1\n\
                   \x20   bne   loop\n\
                   \x20   mov   r0, #0\n\
                   \x20   svc   #0\n\
                   \x20   .align 4096\n\
                   counter:\n\
                   \x20   .word 0\n";
    let machine = build(SchemeKind::Hst, 16, program);
    let report = machine.run(1, 0x1_0000);
    assert!(report.all_ok(), "{:?}", report.outcomes);
    let counter = machine.symbol("counter").unwrap();
    assert_eq!(machine.read_word(counter).unwrap(), 2_000);
    let s = &report.stats;
    assert!(
        s.promotions > 0,
        "2000 iterations over threshold 16 must promote"
    );
    assert!(s.tier_blocks > 0, "promoted code must actually run");
    assert!(s.tier_insns > 0);
    assert!(
        s.tier_blocks <= s.blocks,
        "tier blocks are counted within blocks"
    );
    assert!(s.tier_insns <= s.insns);
    assert!(
        s.deopts <= s.tier_blocks,
        "a deopt implies a superblock entry"
    );
    assert_eq!(
        s.promotions,
        machine.core().superblocks(),
        "every promotion publishes exactly one superblock"
    );
    assert!(
        s.opt_nzcv_killed > 0,
        "dead `movs` flags were not eliminated"
    );
    assert!(
        s.opt_const_folded > 0,
        "constant `mov`+`add` was not folded"
    );
    assert!(
        s.opt_htable_coalesced > 0,
        "the redundant LL-origin hash mark was not coalesced"
    );
}

/// A branch whose direction flips mid-run forces side exits: the
/// superblock stitched along the early-dominant path must deopt and
/// produce the same result as block-granular execution.
#[test]
fn deopts_resume_at_the_architectural_target() {
    // Odd iterations add 1, even iterations add 2 — the parity branch
    // alternates every iteration, so whichever direction the superblock
    // stitches, half the iterations deopt.
    let program = "    mov32 r5, counter\n\
                   \x20   mov32 r6, #4000\n\
                   loop:\n\
                   \x20   ands  r1, r6, #1\n\
                   \x20   beq   even\n\
                   \x20   ldr   r2, [r5]\n\
                   \x20   add   r2, r2, #1\n\
                   \x20   str   r2, [r5]\n\
                   \x20   b     next\n\
                   even:\n\
                   \x20   ldr   r2, [r5]\n\
                   \x20   add   r2, r2, #2\n\
                   \x20   str   r2, [r5]\n\
                   next:\n\
                   \x20   subs  r6, r6, #1\n\
                   \x20   bne   loop\n\
                   \x20   mov   r0, #0\n\
                   \x20   svc   #0\n\
                   \x20   .align 4096\n\
                   counter:\n\
                   \x20   .word 0\n";
    // 2000 odd iterations add 1 each, 2000 even iterations add 2 each.
    let expected = 2_000 + 2_000 * 2;
    for threshold in [0, 4] {
        let machine = build(SchemeKind::Hst, threshold, program);
        let report = machine.run(1, 0x1_0000);
        assert!(report.all_ok(), "tier={threshold}: {:?}", report.outcomes);
        let counter = machine.symbol("counter").unwrap();
        assert_eq!(
            machine.read_word(counter).unwrap(),
            expected,
            "tier={threshold}: wrong sum"
        );
        if threshold > 0 {
            assert!(
                report.stats.deopts > 0,
                "an alternating branch must force side exits"
            );
        } else {
            assert_eq!(report.stats.deopts, 0, "no superblocks, no deopts");
        }
    }
}

/// The checker's substrate: machines translating single-instruction
/// blocks force tiering off no matter the threshold, so scheduled
/// interleaving exploration always sees block-granular atoms.
#[test]
fn single_insn_machines_never_tier() {
    let mut machine = MachineBuilder::new(SchemeKind::Hst)
        .memory(4 << 20)
        .max_block_insns(1)
        .tier_threshold(4)
        .build()
        .expect("single-insn machines force tiering off rather than rejecting it");
    machine.load_asm(&counter_program(500), 0x1_0000).unwrap();
    let report = machine.run(2, 0x1_0000);
    assert!(report.all_ok());
    assert_eq!(report.stats.promotions, 0);
    assert_eq!(machine.core().superblocks(), 0);
    assert_eq!(report.stats.tier_blocks, 0);
}

/// Build-time validation: a superblock must fit within one chained
/// dispatch, and must stitch at least two blocks.
#[test]
fn bad_tier_limits_are_rejected_at_build_time() {
    // superblock_limit > chain_limit (default 64).
    let err = MachineBuilder::new(SchemeKind::Hst)
        .tier_threshold(8)
        .superblock_limit(128)
        .build()
        .unwrap_err();
    assert!(
        err.to_string().contains("chain_limit"),
        "unhelpful error: {err}"
    );
    // superblock_limit < 2.
    let err = MachineBuilder::new(SchemeKind::Hst)
        .tier_threshold(8)
        .superblock_limit(1)
        .build()
        .unwrap_err();
    assert!(
        err.to_string().contains("at least 2"),
        "unhelpful error: {err}"
    );
    // With tiering off the limits are inert and anything builds.
    assert!(MachineBuilder::new(SchemeKind::Hst)
        .tier_threshold(0)
        .superblock_limit(128)
        .build()
        .is_ok());
}

/// The PARSEC-like kernels validate tiered under every scheme, and the
/// deterministic parts of their profile (store counts — a property of
/// the guest) match the untiered run.
#[test]
fn kernels_stay_valid_and_store_counts_match_under_tiering() {
    for kind in SchemeKind::ALL {
        let run = |tier_threshold: u32| {
            let config = MachineConfig {
                tier_threshold,
                superblock_limit: 8,
                ..MachineConfig::default()
            };
            run_parsec_with(kind, Program::Swaptions, THREADS, 0.05, config)
                .unwrap_or_else(|e| panic!("{kind}: {e}"))
        };
        let untiered = run(0);
        let tiered = run(16);
        assert!(untiered.valid, "{kind} untiered: invariants failed");
        assert!(tiered.valid, "{kind} tiered: invariants failed");
        assert_eq!(
            untiered.report.stats.stores, tiered.report.stats.stores,
            "{kind}: tiering changed the guest store count"
        );
    }
}

/// Deopt under fire: the ABA stack workload on real threads with chaos
/// injection and an aggressive promotion threshold. Superblocks must
/// deopt, retry, and degrade without corrupting the stack.
#[test]
fn deopt_under_chaos_soak() {
    let stack = StackConfig {
        nodes: 8,
        ops_per_thread: 300,
        stall: 0,
        victim_stall: 0,
    };
    for kind in SchemeKind::ALL {
        let config = MachineConfig {
            chaos: Some(ChaosCfg::new(0xADB7_71E2, 0.05)),
            watchdog_ms: 10_000,
            tier_threshold: 8,
            superblock_limit: 8,
            ..MachineConfig::default()
        };
        let run = run_stack_with(kind, THREADS, stack, config, None).unwrap();
        for outcome in &run.report.outcomes {
            assert!(
                matches!(
                    outcome,
                    VcpuOutcome::Exited(0) | VcpuOutcome::Livelocked { .. }
                ),
                "{kind}: unclean outcome {outcome:?}"
            );
        }
        if kind != SchemeKind::PicoCas {
            assert!(
                !corrupted(&run),
                "{kind}: corrupted under tiered chaos — {:?}",
                run.verdict
            );
        }
        let s = &run.report.stats;
        assert!(s.tier_blocks <= s.blocks, "{kind}");
        assert!(s.deopts <= s.tier_blocks, "{kind}");
    }
}

/// Same structural-corruption witness as `tests/chaos_soak.rs`.
fn corrupted(run: &StackRun) -> bool {
    let livelocked = run
        .report
        .outcomes
        .iter()
        .filter(|o| matches!(o, VcpuOutcome::Livelocked { .. }))
        .count() as u32;
    run.verdict.self_loops > 0
        || run.verdict.cycle
        || run.verdict.wild_pointer
        || run.verdict.lost > livelocked
}
