//! The flight-recorder tracing plane, end to end.
//!
//! Three contracts from the observability work are on trial:
//!
//! 1. **Traced soak** — a contended LL/SC run with chaos injection and
//!    tracing enabled yields Chrome trace-event JSON the in-tree
//!    validator accepts, with per-vCPU tracks carrying the LL/SC
//!    lifecycle, and the injected-vs-organic SC failure split adds up.
//! 2. **Watchdog forensics** — a forced machine-wide stall makes the
//!    watchdog halt the run with the last flight-recorder events of
//!    every stalled vCPU attached to its diagnostic dump.
//! 3. **Off by default** — an untouched config allocates no recorder.

use adbt::trace::{chrome, validate};
use adbt::{ChaosCfg, MachineBuilder, SchemeKind, TraceKind, VcpuOutcome};

const SEED: u64 = 0xADB7_7ACE;

/// A contended LL/SC counter: every thread increments guest address 0
/// `iters` times through its monitor.
fn contended_loop(iters: u32) -> String {
    format!(
        "    mov32 r6, #{iters}\n\
         retry:\n\
         \x20   ldrex r1, [r5]\n\
         \x20   add   r1, r1, #1\n\
         \x20   strex r2, r1, [r5]\n\
         \x20   cmp   r2, #0\n\
         \x20   bne   retry\n\
         \x20   subs  r6, r6, #1\n\
         \x20   bne   retry\n\
         \x20   mov   r0, #0\n\
         \x20   svc   #0\n"
    )
}

#[test]
fn traced_chaos_soak_produces_validator_accepted_json() {
    let threads = 4;
    let mut machine = MachineBuilder::new(SchemeKind::Hst)
        .memory(1 << 20)
        .chaos(Some(ChaosCfg::new(SEED, 0.05)))
        .trace(true)
        .build()
        .unwrap();
    machine.load_asm(&contended_loop(500), 0x1_0000).unwrap();
    let report = machine.run(threads, 0x1_0000);
    assert!(report.all_ok(), "soak failed: {:?}", report.outcomes);

    // The injected/organic split: injections are a subset of failures,
    // and the merged counter is exactly the per-vCPU sum.
    let s = &report.stats;
    assert!(s.sc > 0);
    assert!(
        s.sc_failures_injected <= s.sc_failures,
        "injected {} > total failures {}",
        s.sc_failures_injected,
        s.sc_failures
    );
    assert_eq!(
        s.sc_failures_injected,
        report
            .per_cpu
            .iter()
            .map(|c| c.sc_failures_injected)
            .sum::<u64>(),
        "merged sc_failures_injected ≠ per-vCPU sum"
    );

    let rec = machine.core().trace.as_ref().expect("recorder armed");
    let snaps = rec.snapshot_all();
    assert_eq!(snaps.len(), threads as usize, "one ring per vCPU");
    for (tid, events) in &snaps {
        assert!(!events.is_empty(), "vcpu {tid} recorded nothing");
        assert!(
            events.iter().any(|e| e.kind == TraceKind::LlIssue),
            "vcpu {tid} has no LL events"
        );
        assert!(
            events.iter().any(|e| e.kind == TraceKind::ScOk),
            "vcpu {tid} has no successful SC events"
        );
    }

    let json = chrome::render_with_extras(
        &snaps,
        chrome::Clock::Nanos,
        &[("histograms", rec.hists.to_json())],
    );
    let check = validate::validate_chrome_trace(&json).expect("trace JSON is valid");
    assert!(
        check.tracks > threads as usize,
        "expected a track per vCPU plus metadata, got {}",
        check.tracks
    );
    assert!(check.instants > 0);
}

/// Freeze the whole machine from outside (hold the exclusive barrier and
/// never leave), and check the watchdog's dump carries the last ring
/// events of every stalled vCPU.
#[test]
fn watchdog_dump_includes_ring_events_per_stalled_vcpu() {
    let mut machine = MachineBuilder::new(SchemeKind::Hst)
        .memory(1 << 20)
        .trace(true)
        .watchdog_ms(200)
        .build()
        .unwrap();
    // No exit: the loop runs until the watchdog halts the machine.
    machine
        .load_asm(
            "retry:\n\
             \x20   ldrex r1, [r5]\n\
             \x20   add   r1, r1, #1\n\
             \x20   strex r2, r1, [r5]\n\
             \x20   b     retry\n",
            0x1_0000,
        )
        .unwrap();

    let run_done = std::sync::atomic::AtomicBool::new(false);
    let report = std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            let report = machine.run(2, 0x1_0000);
            run_done.store(true, std::sync::atomic::Ordering::SeqCst);
            report
        });
        // Let the vCPUs retire some traced work first.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let barrier = &machine.core().exclusive;
        barrier.register();
        // Once granted, hold exclusivity: every vCPU stays parked, no
        // progress is made, and the watchdog must fire and halt() —
        // which is also what releases the parked vCPUs to drain. Poll
        // `run_done` as well: `run_threaded` resets the halt flag on its
        // way out, so waiting on `halted()` alone can miss the window.
        if barrier.start_exclusive().is_ok() {
            while !barrier.halted() && !run_done.load(std::sync::atomic::Ordering::SeqCst) {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            barrier.end_exclusive();
        }
        barrier.unregister();
        handle.join().expect("run thread panicked")
    });

    for outcome in &report.outcomes {
        assert!(
            matches!(outcome, VcpuOutcome::Livelocked { .. }),
            "expected Livelocked after the halt, got {outcome:?}"
        );
    }
    let dump = report.watchdog.as_ref().expect("watchdog fired");
    assert!(
        dump.report.contains("last flight-recorder events:"),
        "dump lacks the ring-event section:\n{}",
        dump.report
    );
    for &tid in &dump.stalled_tids {
        let events = dump
            .ring_events
            .iter()
            .find(|(t, _)| *t == tid)
            .map(|(_, events)| events.as_slice())
            .unwrap_or(&[]);
        assert!(
            !events.is_empty(),
            "stalled vcpu {tid} has no ring events in the dump"
        );
    }
}

/// The translation-cache lifecycle flows through the recorder: a
/// self-patching prologue emits `Invalidate`, and a cache-limited churn
/// epilogue emits `Flush` and `Reclaim` — and the rendered JSON (with
/// all three kinds on the timeline) still validates.
#[test]
fn lifecycle_events_flow_through_the_recorder_and_validator() {
    // Prologue: patch our own loop body once (SMC → Invalidate), then
    // run a block chain too large for a segment-sized cache budget three
    // times (pressure → Flush, grace expiry → Reclaim).
    let mut source = String::from(
        "    mov   r3, #0\n\
         \x20   mov32 r5, patch\n\
         \x20   mov32 r6, donor\n\
         ploop:\n\
         patch:\n\
         \x20   add   r1, r1, #1\n\
         \x20   add   r3, r3, #1\n\
         \x20   cmp   r3, #2\n\
         \x20   beq   churn\n\
         \x20   ldr   r2, [r6]\n\
         \x20   str   r2, [r5]\n\
         \x20   b     ploop\n\
         donor:\n\
         \x20   add   r1, r1, #7\n\
         churn:\n\
         \x20   mov   r4, #3\n\
         outer:\n",
    );
    for i in 0..1500 {
        source.push_str(&format!(
            "c{i}:\n    add   r0, r0, #1\n    b     c{}\n",
            i + 1
        ));
    }
    source.push_str(
        "c1500:\n    subs  r4, r4, #1\n    bne   outer\n    mov   r0, #0\n    svc   #0\n",
    );
    let mut machine = MachineBuilder::new(SchemeKind::Hst)
        .memory(1 << 20)
        .trace(true)
        .cache_limit(adbt::engine::MachineCore::MIN_CACHE_LIMIT)
        .build()
        .unwrap();
    machine.load_asm(&source, 0x1_0000).unwrap();
    let report = machine.run(1, 0x1_0000);
    assert!(report.all_ok(), "{:?}", report.outcomes);
    assert!(report.stats.invalidations >= 1);
    assert!(report.stats.flushes >= 1);
    assert!(report.stats.reclaimed_blocks >= 1);

    let rec = machine.core().trace.as_ref().expect("recorder armed");
    let snaps = rec.snapshot_all();
    let events: Vec<_> = snaps.iter().flat_map(|(_, events)| events).collect();
    for kind in [TraceKind::Flush, TraceKind::Reclaim] {
        assert!(
            events.iter().any(|e| e.kind == kind),
            "no {kind:?} event reached the ring"
        );
    }
    let json = chrome::render(&snaps, chrome::Clock::Nanos);
    let check = validate::validate_chrome_trace(&json).expect("lifecycle trace JSON is valid");
    assert!(check.instants > 0);

    // The churn traffic may have evicted the early Invalidate from the
    // bounded ring (stats prove it happened); a patch-only run pins the
    // event itself on the timeline.
    let mut machine = MachineBuilder::new(SchemeKind::Hst)
        .memory(1 << 20)
        .trace(true)
        .build()
        .unwrap();
    machine
        .load_asm(
            &adbt::workloads::interleave::Litmus::SmcSelf
                .program()
                .source,
            0x1_0000,
        )
        .unwrap();
    let patcher = machine.symbol("patcher").unwrap();
    let report = machine.run_vcpus(vec![adbt::Vcpu::new(1, patcher)]);
    // Exit 8 is the litmus' patched-semantics witness (1 + 7).
    assert_eq!(report.outcomes, vec![VcpuOutcome::Exited(8)]);
    let rec = machine.core().trace.as_ref().expect("recorder armed");
    let snaps = rec.snapshot_all();
    assert!(
        snaps
            .iter()
            .flat_map(|(_, events)| events)
            .any(|e| e.kind == TraceKind::Invalidate),
        "the SMC store left no Invalidate event on the ring"
    );
    let json = chrome::render(&snaps, chrome::Clock::Nanos);
    validate::validate_chrome_trace(&json).expect("SMC trace JSON is valid");
}

#[test]
fn tracing_absent_by_default() {
    let mut machine = MachineBuilder::new(SchemeKind::Hst).build().unwrap();
    machine.load_asm("mov r0, #0\nsvc #0\n", 0x1_0000).unwrap();
    let report = machine.run(2, 0x1_0000);
    assert!(report.all_ok());
    assert!(
        machine.core().trace.is_none(),
        "no recorder may exist unless configured"
    );
}
